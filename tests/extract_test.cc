#include <gtest/gtest.h>

#include "extract/extractor.h"
#include "gen/dbg.h"
#include "gen/table1.h"
#include "json/import.h"
#include "tests/test_util.h"

namespace schemex::extract {
namespace {

using Stage1 = ExtractorOptions::Stage1Algorithm;

TEST(ExtractorTest, PerfectOnlyWhenNoTarget) {
  graph::DataGraph g = test::MakeFigure4Database();
  SchemaExtractor ex{ExtractorOptions{}};
  ASSERT_OK_AND_ASSIGN(ExtractionResult r, ex.Run(g));
  EXPECT_FALSE(r.clustering_applied);
  EXPECT_EQ(r.num_perfect_types, 3u);
  EXPECT_EQ(r.num_final_types, 3u);
  EXPECT_EQ(r.defect.defect(), 0u);  // perfect typing has no defect
}

TEST(ExtractorTest, BothStage1AlgorithmsAgreeOnDbg) {
  ASSERT_OK_AND_ASSIGN(graph::DataGraph g, gen::MakeDbgDataset(3));
  ExtractorOptions a;
  a.stage1 = Stage1::kGfp;
  ExtractorOptions b;
  b.stage1 = Stage1::kRefinement;
  ASSERT_OK_AND_ASSIGN(ExtractionResult ra, SchemaExtractor(a).Run(g));
  ASSERT_OK_AND_ASSIGN(ExtractionResult rb, SchemaExtractor(b).Run(g));
  EXPECT_EQ(ra.num_perfect_types, rb.num_perfect_types);
}

TEST(ExtractorTest, DbgClusteringRecoversIntendedScale) {
  // The headline DBG behaviour (Fig. 1): dozens of perfect types, but 6
  // approximate types summarize the data with modest defect.
  ASSERT_OK_AND_ASSIGN(graph::DataGraph g, gen::MakeDbgDataset());
  ExtractorOptions opt;
  opt.target_num_types = 6;
  ASSERT_OK_AND_ASSIGN(ExtractionResult r, SchemaExtractor(opt).Run(g));
  EXPECT_GT(r.num_perfect_types, 40u);
  EXPECT_EQ(r.num_final_types, 6u);
  EXPECT_TRUE(r.clustering_applied);
  // Defect is far below "no schema at all" (every link excess).
  EXPECT_LT(r.defect.defect(), g.NumEdges() / 2);
  // Every complex object ends up with at least one type (fallback on).
  EXPECT_EQ(r.recast.num_untyped, 0u);
}

TEST(ExtractorTest, RolesPassPropagatesToHomes) {
  graph::DataGraph g = test::MakeFigure5Database();
  ExtractorOptions opt;
  opt.decompose_roles = true;
  ASSERT_OK_AND_ASSIGN(ExtractionResult r, SchemaExtractor(opt).Run(g));
  EXPECT_TRUE(r.roles_applied);
  EXPECT_EQ(r.roles.num_eliminated, 1u);
  EXPECT_EQ(r.num_final_types, 2u);
  // The dual-role object has two home types.
  size_t multi_home = 0;
  for (const auto& hs : r.final_homes) {
    if (hs.size() == 2) ++multi_home;
  }
  EXPECT_EQ(multi_home, 1u);
}

TEST(ExtractorTest, TargetLargerThanPerfectIsIdentity) {
  graph::DataGraph g = test::MakeFigure4Database();
  ExtractorOptions opt;
  opt.target_num_types = 50;
  ASSERT_OK_AND_ASSIGN(ExtractionResult r, SchemaExtractor(opt).Run(g));
  EXPECT_FALSE(r.clustering_applied);
  EXPECT_EQ(r.num_final_types, 3u);
}

TEST(ExtractorTest, EmptyTypeCanAbsorbOutliers) {
  // With the empty type enabled and an aggressive target, some stage-1
  // types may map to nothing; their objects survive through recast.
  ASSERT_OK_AND_ASSIGN(graph::DataGraph g, gen::MakeDbgDataset());
  ExtractorOptions opt;
  opt.target_num_types = 3;
  opt.enable_empty_type = true;
  ASSERT_OK_AND_ASSIGN(ExtractionResult r, SchemaExtractor(opt).Run(g));
  EXPECT_EQ(r.num_final_types, 3u);
  EXPECT_EQ(r.recast.assignment.NumObjects(), g.NumObjects());
}

TEST(ExtractorTest, JsonPipelineEndToEnd) {
  // JSON records in, typing program out — the library's quickstart path.
  ASSERT_OK_AND_ASSIGN(graph::DataGraph g, json::ImportJson(R"([
    {"name": "a", "email": "a@x"},
    {"name": "b", "email": "b@x"},
    {"name": "c", "email": "c@x", "phone": "3"},
    {"name": "d", "email": "d@x", "phone": "4"}
  ])"));
  ExtractorOptions opt;
  opt.target_num_types = 2;
  ASSERT_OK_AND_ASSIGN(ExtractionResult r, SchemaExtractor(opt).Run(g));
  // Perfect: root type + 2 record variants = 3; clustered to 2.
  EXPECT_EQ(r.num_perfect_types, 3u);
  EXPECT_EQ(r.num_final_types, 2u);
}

TEST(SensitivityTest, SweepIsCompleteAndMonotoneInDistance) {
  ASSERT_OK_AND_ASSIGN(graph::DataGraph g, gen::MakeDbgDataset());
  ExtractorOptions opt;
  ASSERT_OK_AND_ASSIGN(std::vector<SensitivityPoint> pts,
                       SensitivitySweep(g, opt));
  ASSERT_GT(pts.size(), 10u);
  // First point is the perfect typing (defect 0), ks strictly decrease
  // down to 1, cumulative distance is non-decreasing.
  EXPECT_EQ(pts.front().defect, 0u);
  EXPECT_EQ(pts.back().k, 1u);
  for (size_t i = 1; i < pts.size(); ++i) {
    EXPECT_EQ(pts[i].k, pts[i - 1].k - 1);
    EXPECT_GE(pts[i].total_distance, pts[i - 1].total_distance);
  }
}

TEST(SensitivityTest, DefectExplodesAtTinyK) {
  // Figure 6's right-to-left read: k = 1 is far worse than the knee.
  ASSERT_OK_AND_ASSIGN(graph::DataGraph g, gen::MakeDbgDataset());
  ExtractorOptions opt;
  ASSERT_OK_AND_ASSIGN(std::vector<SensitivityPoint> pts,
                       SensitivitySweep(g, opt));
  size_t defect_at_1 = 0, defect_at_8 = 0;
  for (const auto& p : pts) {
    if (p.k == 1) defect_at_1 = p.defect;
    if (p.k == 8) defect_at_8 = p.defect;
  }
  EXPECT_GT(defect_at_1, defect_at_8 * 2);
}

TEST(SensitivityTest, MinKRespected) {
  graph::DataGraph g = test::MakeFigure4Database();
  ExtractorOptions opt;
  ASSERT_OK_AND_ASSIGN(std::vector<SensitivityPoint> pts,
                       SensitivitySweep(g, opt, /*min_k=*/2));
  EXPECT_EQ(pts.back().k, 2u);
}

TEST(CancellationTest, CheckCancelAbortsBetweenStages) {
  // A counting hook makes cancellation deterministic: the first poll
  // (the Stage-1/2 boundary) succeeds, the second (Stage-2/3) cancels,
  // so the pipeline runs clustering but never recasts.
  ASSERT_OK_AND_ASSIGN(graph::DataGraph g, gen::MakeDbgDataset());
  ExtractorOptions opt;
  opt.target_num_types = 6;

  int polls = 0;
  opt.check_cancel = [&polls]() -> util::Status {
    return ++polls >= 2 ? util::Status::DeadlineExceeded("budget spent")
                        : util::Status::OK();
  };
  auto r = SchemaExtractor(opt).Run(g);
  EXPECT_EQ(r.status().code(), util::StatusCode::kDeadlineExceeded);
  EXPECT_EQ(polls, 2);

  // Cancelling at the very first boundary stops even earlier.
  polls = 0;
  opt.check_cancel = [&polls]() -> util::Status {
    ++polls;
    return util::Status::DeadlineExceeded("budget spent");
  };
  r = SchemaExtractor(opt).Run(g);
  EXPECT_EQ(r.status().code(), util::StatusCode::kDeadlineExceeded);
  EXPECT_EQ(polls, 1);

  // A hook that never fires leaves the result untouched.
  opt.check_cancel = []() { return util::Status::OK(); };
  ASSERT_OK_AND_ASSIGN(ExtractionResult ok_result, SchemaExtractor(opt).Run(g));
  EXPECT_EQ(ok_result.num_final_types, 6u);
}

TEST(CancellationTest, SweepPollsBetweenSnapshots) {
  ASSERT_OK_AND_ASSIGN(graph::DataGraph g, gen::MakeDbgDataset());
  ExtractorOptions opt;
  // Allow stage 1 plus a few snapshot recasts, then cancel: the sweep
  // must stop early instead of walking every k.
  int budget = 4;
  opt.check_cancel = [&budget]() -> util::Status {
    return --budget < 0 ? util::Status::DeadlineExceeded("budget spent")
                        : util::Status::OK();
  };
  auto pts = SensitivitySweep(g, opt);
  EXPECT_EQ(pts.status().code(), util::StatusCode::kDeadlineExceeded);
}

}  // namespace
}  // namespace schemex::extract
