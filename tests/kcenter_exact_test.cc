#include <gtest/gtest.h>

#include <algorithm>

#include "cluster/exact.h"
#include "cluster/greedy.h"
#include "cluster/kcenter.h"
#include "gen/spec.h"
#include "tests/test_util.h"
#include "typing/defect.h"
#include "typing/perfect_typing.h"
#include "typing/recast.h"

namespace schemex::cluster {
namespace {

using typing::TypedLink;
using typing::TypeId;
using typing::TypeSignature;
using typing::TypingProgram;

TypingProgram ThreeGroups(graph::LabelInterner* labels) {
  // Three natural groups of two types each; within-group distance 1,
  // across-group distance >= 4.
  TypingProgram p;
  auto atomic = [&](const char* l) {
    return TypedLink::OutAtomic(labels->Intern(l));
  };
  p.AddType("a1", TypeSignature::FromLinks({atomic("a"), atomic("b")}));
  p.AddType("a2", TypeSignature::FromLinks(
                      {atomic("a"), atomic("b"), atomic("a_opt")}));
  p.AddType("b1", TypeSignature::FromLinks({atomic("c"), atomic("d")}));
  p.AddType("b2", TypeSignature::FromLinks(
                      {atomic("c"), atomic("d"), atomic("b_opt")}));
  p.AddType("c1", TypeSignature::FromLinks({atomic("e"), atomic("f")}));
  p.AddType("c2", TypeSignature::FromLinks(
                      {atomic("e"), atomic("f"), atomic("c_opt")}));
  return p;
}

TEST(KCenterTest, RecoversNaturalClusters) {
  graph::LabelInterner labels;
  TypingProgram p = ThreeGroups(&labels);
  ASSERT_OK_AND_ASSIGN(KCenterResult r,
                       KCenterCluster(p, {10, 5, 10, 5, 10, 5}, 3));
  EXPECT_EQ(r.program.NumTypes(), 3u);
  EXPECT_EQ(r.map[0], r.map[1]);
  EXPECT_EQ(r.map[2], r.map[3]);
  EXPECT_EQ(r.map[4], r.map[5]);
  EXPECT_NE(r.map[0], r.map[2]);
  EXPECT_NE(r.map[2], r.map[4]);
  EXPECT_EQ(r.radius, 1u);  // each satellite is 1 away from its medoid
  // Weighted medoid picks the heavy member (the 2-link core signature).
  for (TypeId m : r.medoids) {
    EXPECT_EQ(p.type(m).signature.size(), 2u);
  }
  ASSERT_OK(r.program.Validate());
  // Weights accumulate.
  uint64_t total = 0;
  for (uint64_t w : r.weights) total += w;
  EXPECT_EQ(total, 45u);
}

TEST(KCenterTest, IdentityWhenKCoversAll) {
  graph::LabelInterner labels;
  TypingProgram p = ThreeGroups(&labels);
  ASSERT_OK_AND_ASSIGN(KCenterResult r,
                       KCenterCluster(p, {1, 1, 1, 1, 1, 1}, 10));
  EXPECT_EQ(r.program.NumTypes(), 6u);
  EXPECT_EQ(r.radius, 0u);
}

TEST(KCenterTest, InputValidation) {
  graph::LabelInterner labels;
  TypingProgram p = ThreeGroups(&labels);
  EXPECT_FALSE(KCenterCluster(p, {1, 2}, 2).ok());
  EXPECT_FALSE(KCenterCluster(p, {1, 1, 1, 1, 1, 1}, 0).ok());
}

TEST(KCenterTest, DuplicateSignaturesCollapseEarly) {
  graph::LabelInterner labels;
  graph::LabelId a = labels.Intern("a");
  TypingProgram p;
  p.AddType("t1", TypeSignature::FromLinks({TypedLink::OutAtomic(a)}));
  p.AddType("t2", TypeSignature::FromLinks({TypedLink::OutAtomic(a)}));
  p.AddType("t3", TypeSignature::FromLinks({TypedLink::OutAtomic(a)}));
  // Only one distinct point: even with k = 2, one cluster suffices.
  ASSERT_OK_AND_ASSIGN(KCenterResult r, KCenterCluster(p, {1, 1, 1}, 2));
  EXPECT_EQ(r.program.NumTypes(), 1u);
  EXPECT_EQ(r.radius, 0u);
}

class SmallInstance : public ::testing::TestWithParam<uint64_t> {
 protected:
  graph::DataGraph MakeGraph() {
    gen::DatasetSpec spec;
    spec.name = "tiny";
    spec.atomic_pool_per_label = 4;
    spec.types.push_back(gen::TypeSpec{
        "u", 12, {{"p", gen::kAtomicTarget, 1.0},
                  {"q", gen::kAtomicTarget, 0.5}}});
    spec.types.push_back(gen::TypeSpec{
        "v", 12, {{"r", gen::kAtomicTarget, 1.0},
                  {"s", gen::kAtomicTarget, 0.5}}});
    auto g = gen::Generate(spec, GetParam());
    return std::move(g).value();
  }
};

TEST_P(SmallInstance, ExactIsNoWorseThanHeuristics) {
  graph::DataGraph g = MakeGraph();
  ASSERT_OK_AND_ASSIGN(typing::PerfectTypingResult stage1,
                       typing::PerfectTypingViaRefinement(g));
  if (stage1.program.NumTypes() > 8 || stage1.program.NumTypes() < 2) {
    GTEST_SKIP() << "degenerate draw";
  }
  const size_t k = 2;

  ExactOptions eopt;
  eopt.k = k;
  ASSERT_OK_AND_ASSIGN(ExactResult exact, ExactOptimalTyping(g, stage1, eopt));
  EXPECT_GT(exact.partitions_tried, 0u);

  // Greedy at the same k, measured with the same defect pipeline.
  ClusteringOptions copt;
  copt.target_num_types = k;
  copt.enable_empty_type = false;
  ASSERT_OK_AND_ASSIGN(ClusteringResult greedy,
                       ClusterTypes(stage1.program, stage1.weight, copt));
  std::vector<std::vector<TypeId>> homes(g.NumObjects());
  for (size_t o = 0; o < stage1.home.size(); ++o) {
    if (stage1.home[o] != typing::kInvalidType) {
      TypeId m = greedy.final_map[static_cast<size_t>(stage1.home[o])];
      if (m != kEmptyType) homes[o] = {m};
    }
  }
  ASSERT_OK_AND_ASSIGN(typing::RecastResult recast,
                       typing::Recast(greedy.final_program, g, homes));
  size_t greedy_defect =
      typing::ComputeDefect(greedy.final_program, g, recast.assignment)
          .defect();

  EXPECT_LE(exact.defect, greedy_defect) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SmallInstance,
                         ::testing::Values(11, 22, 33, 44, 55));

TEST(ExactTest, GuardsAgainstBlowUp) {
  graph::DataGraph g;
  for (int i = 0; i < 40; ++i) {
    graph::ObjectId c = g.AddComplex();
    (void)g.AddEdge(c, g.AddAtomic("v"),
                    "l" + std::to_string(i));  // all distinct types
  }
  ASSERT_OK_AND_ASSIGN(typing::PerfectTypingResult stage1,
                       typing::PerfectTypingViaRefinement(g));
  ExactOptions opt;
  opt.k = 3;
  EXPECT_EQ(ExactOptimalTyping(g, stage1, opt).status().code(),
            util::StatusCode::kFailedPrecondition);
}

TEST(ExactTest, SingleTypeInstance) {
  graph::DataGraph g;
  graph::ObjectId c = g.AddComplex();
  (void)g.AddEdge(c, g.AddAtomic("v"), "x");
  ASSERT_OK_AND_ASSIGN(typing::PerfectTypingResult stage1,
                       typing::PerfectTypingViaRefinement(g));
  ExactOptions opt;
  opt.k = 1;
  ASSERT_OK_AND_ASSIGN(ExactResult r, ExactOptimalTyping(g, stage1, opt));
  EXPECT_EQ(r.defect, 0u);
  EXPECT_EQ(r.program.NumTypes(), 1u);
}

TEST(KCenterTest, AllZeroWeightsFallBackToLowestIdMedoid) {
  // Weights only steer medoid selection; the traversal is unweighted. With
  // every weight 0 all medoid costs tie at 0 and the scan keeps the first
  // (lowest stage-1 id) member of each cluster — the 2-link core here.
  graph::LabelInterner labels;
  TypingProgram p = ThreeGroups(&labels);
  ASSERT_OK_AND_ASSIGN(KCenterResult r,
                       KCenterCluster(p, {0, 0, 0, 0, 0, 0}, 3));
  EXPECT_EQ(r.program.NumTypes(), 3u);
  EXPECT_EQ(r.radius, 1u);
  EXPECT_EQ(r.map[0], r.map[1]);
  EXPECT_EQ(r.map[2], r.map[3]);
  EXPECT_EQ(r.map[4], r.map[5]);
  for (TypeId m : r.medoids) {
    EXPECT_EQ(m % 2, 0) << "medoid must be the even (first) group member";
    EXPECT_EQ(p.type(m).signature.size(), 2u);
  }
  for (uint64_t w : r.weights) EXPECT_EQ(w, 0u);
  ASSERT_OK(r.program.Validate());
  // Deterministic: a second run reproduces the result exactly.
  ASSERT_OK_AND_ASSIGN(KCenterResult r2,
                       KCenterCluster(p, {0, 0, 0, 0, 0, 0}, 3));
  EXPECT_EQ(r.medoids, r2.medoids);
  EXPECT_EQ(r.map, r2.map);
  EXPECT_TRUE(r.program == r2.program);
}

TEST(KCenterTest, ZeroWeightMembersLoseMedoidElections) {
  // A zero-weight member contributes nothing to any medoid cost, so the
  // weighted sibling wins the definition even though the traversal (which
  // ignores weights) may have centered on either.
  graph::LabelInterner labels;
  TypingProgram p = ThreeGroups(&labels);
  ASSERT_OK_AND_ASSIGN(KCenterResult r,
                       KCenterCluster(p, {0, 5, 0, 5, 0, 5}, 3));
  EXPECT_EQ(r.program.NumTypes(), 3u);
  for (TypeId m : r.medoids) {
    EXPECT_EQ(m % 2, 1) << "weighted satellite must win the election";
    EXPECT_EQ(p.type(m).signature.size(), 3u);
  }
  uint64_t total = 0;
  for (uint64_t w : r.weights) total += w;
  EXPECT_EQ(total, 15u);
  ASSERT_OK(r.program.Validate());
}

TEST(ExactTest, AllZeroWeightsStillEnumerate) {
  // Zero weights collapse every medoid election to a tie (first member
  // wins) but must not break the partition search itself.
  graph::DataGraph g = test::MakeFigure4Database();
  ASSERT_OK_AND_ASSIGN(typing::PerfectTypingResult stage1,
                       typing::PerfectTypingViaGfp(g));
  std::fill(stage1.weight.begin(), stage1.weight.end(), 0u);
  ExactOptions opt;
  opt.k = 2;
  ASSERT_OK_AND_ASSIGN(ExactResult r, ExactOptimalTyping(g, stage1, opt));
  EXPECT_GT(r.partitions_tried, 0u);
  EXPECT_LE(r.program.NumTypes(), 2u);
  ASSERT_OK(r.program.Validate());
  ASSERT_OK_AND_ASSIGN(ExactResult r2, ExactOptimalTyping(g, stage1, opt));
  EXPECT_EQ(r.defect, r2.defect);
  EXPECT_TRUE(r.program == r2.program);
}

TEST(ExactTest, KOneForcesFullMerge) {
  graph::DataGraph g = test::MakeFigure4Database();
  ASSERT_OK_AND_ASSIGN(typing::PerfectTypingResult stage1,
                       typing::PerfectTypingViaGfp(g));
  ExactOptions opt;
  opt.k = 1;
  ASSERT_OK_AND_ASSIGN(ExactResult r, ExactOptimalTyping(g, stage1, opt));
  EXPECT_EQ(r.program.NumTypes(), 1u);
  // With everything in one type there must be some defect on Figure 4.
  EXPECT_GT(r.defect, 0u);
}

}  // namespace
}  // namespace schemex::cluster
