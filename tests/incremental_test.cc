#include <gtest/gtest.h>

#include "extract/extractor.h"
#include "gen/dbg.h"
#include "tests/test_util.h"
#include "typing/incremental.h"

namespace schemex::typing {
namespace {

/// A fixture with a 1-type schema: person = {->name^0, ->email^0}.
class IncrementalFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    graph::GraphBuilder b;
    ASSERT_OK(b.Atomic("n1", "ada"));
    ASSERT_OK(b.Atomic("e1", "ada@x"));
    ASSERT_OK(b.Edge("p1", "name", "n1"));
    ASSERT_OK(b.Edge("p1", "email", "e1"));
    util::Status st;
    base_ = std::move(b).Build(&st);
    ASSERT_OK(st);
    name_ = base_.labels().Find("name");
    email_ = base_.labels().Find("email");
    program_.AddType("person",
                     TypeSignature::FromLinks({TypedLink::OutAtomic(name_),
                                               TypedLink::OutAtomic(email_)}));
    TypeAssignment tau(base_.NumObjects());
    tau.Assign(0, 0);
    typer_ = std::make_unique<IncrementalTyper>(program_, base_, tau);
  }

  graph::DataGraph base_;
  graph::LabelId name_, email_;
  TypingProgram program_;
  std::unique_ptr<IncrementalTyper> typer_;
};

TEST_F(IncrementalFixture, ExactFitAssignedDirectly) {
  IncrementalTyper::NewObject rec;
  rec.name = "p2";
  rec.fields = {{"name", "grace"}, {"email", "grace@x"}};
  ASSERT_OK_AND_ASSIGN(IncrementalTyper::TypedObject t,
                       typer_->AddAndType(rec));
  EXPECT_EQ(t.exact_types, (std::vector<TypeId>{0}));
  EXPECT_EQ(typer_->num_exact(), 1u);
  EXPECT_EQ(typer_->num_fallback(), 0u);
  EXPECT_TRUE(typer_->assignment().Has(t.id, 0));
  EXPECT_EQ(typer_->graph().NumComplexObjects(), 2u);
}

TEST_F(IncrementalFixture, MisfitFallsBackToNearest) {
  IncrementalTyper::NewObject rec;
  rec.name = "p3";
  rec.fields = {{"name", "edsger"}};  // email missing
  ASSERT_OK_AND_ASSIGN(IncrementalTyper::TypedObject t,
                       typer_->AddAndType(rec));
  EXPECT_TRUE(t.exact_types.empty());
  EXPECT_EQ(t.fallback_type, 0);
  EXPECT_EQ(t.fallback_distance, 1u);
  EXPECT_EQ(typer_->num_fallback(), 1u);
  EXPECT_DOUBLE_EQ(typer_->MeanFallbackDistance(), 1.0);
  EXPECT_TRUE(typer_->assignment().Has(t.id, 0));
}

TEST_F(IncrementalFixture, ReferencesToExistingObjects) {
  IncrementalTyper::NewObject rec;
  rec.name = "p4";
  rec.fields = {{"name", "x"}, {"email", "x@x"}};
  rec.refs = {{"friend", 0}};  // extra link — still an exact fit (GFP
                               // semantics tolerates extra edges)
  ASSERT_OK_AND_ASSIGN(IncrementalTyper::TypedObject t,
                       typer_->AddAndType(rec));
  EXPECT_EQ(t.exact_types.size(), 1u);
  // Dangling reference rejected before mutation.
  IncrementalTyper::NewObject bad;
  bad.refs = {{"friend", 10'000}};
  size_t before = typer_->graph().NumObjects();
  EXPECT_FALSE(typer_->AddAndType(bad).ok());
  EXPECT_EQ(typer_->graph().NumObjects(), before);
}

TEST_F(IncrementalFixture, RetypeRecommendationThreshold) {
  // 8 exact arrivals, then misfits until the fraction crosses 25%.
  for (int i = 0; i < 8; ++i) {
    IncrementalTyper::NewObject rec;
    rec.fields = {{"name", "n"}, {"email", "e"}};
    ASSERT_OK(typer_->AddAndType(rec).status());
  }
  EXPECT_FALSE(typer_->RetypeRecommended(0.25, 10));
  for (int i = 0; i < 4; ++i) {
    IncrementalTyper::NewObject rec;
    rec.fields = {{"nickname", "z"}};
    ASSERT_OK(typer_->AddAndType(rec).status());
  }
  // 4 of 12 arrivals misfit (33% > 25%), and >= 10 arrivals seen.
  EXPECT_TRUE(typer_->RetypeRecommended(0.25, 10));
  EXPECT_FALSE(typer_->RetypeRecommended(0.50, 10));
}

TEST(IncrementalTest, ChainedArrivalsSeeEachOther) {
  // An arrival can reference a previous arrival and the earlier object's
  // assigned type witnesses the later one's requirements.
  graph::DataGraph g;
  TypingProgram p;
  graph::LabelId leader = g.InternLabel("leader");
  graph::LabelId name = g.InternLabel("name");
  TypeId boss = p.AddType(
      "boss", TypeSignature::FromLinks({TypedLink::OutAtomic(name)}));
  TypeId worker = p.AddType(
      "worker", TypeSignature::FromLinks({TypedLink::Out(leader, boss)}));
  IncrementalTyper typer(p, g, TypeAssignment(0));

  IncrementalTyper::NewObject b;
  b.name = "boss1";
  b.fields = {{"name", "B"}};
  ASSERT_OK_AND_ASSIGN(IncrementalTyper::TypedObject tb, typer.AddAndType(b));
  ASSERT_EQ(tb.exact_types, (std::vector<TypeId>{boss}));

  IncrementalTyper::NewObject w;
  w.name = "worker1";
  w.refs = {{"leader", tb.id}};
  ASSERT_OK_AND_ASSIGN(IncrementalTyper::TypedObject tw, typer.AddAndType(w));
  EXPECT_EQ(tw.exact_types, (std::vector<TypeId>{worker}));
}

TEST(IncrementalTest, EndToEndWithExtractor) {
  // Extract a 6-type DBG schema, then stream new publication-shaped
  // objects at it.
  auto g = gen::MakeDbgDataset();
  extract::ExtractorOptions opt;
  opt.target_num_types = 6;
  auto r = extract::SchemaExtractor(opt).Run(*g);
  ASSERT_TRUE(r.ok());

  IncrementalTyper typer(r->final_program, *g, r->recast.assignment);
  // Find a db_person to author the new publication.
  graph::ObjectId person = graph::kInvalidObject;
  for (graph::ObjectId o = 0; o < g->NumObjects(); ++o) {
    if (g->Name(o).substr(0, 9) == "db_person") {
      person = o;
      break;
    }
  }
  ASSERT_NE(person, graph::kInvalidObject);
  IncrementalTyper::NewObject pub;
  pub.name = "new_pub";
  pub.fields = {{"name", "Extracting Schema"},
                {"conference", "SIGMOD"},
                {"postscript", "p.ps"}};
  pub.refs = {{"author", person}};
  ASSERT_OK_AND_ASSIGN(IncrementalTyper::TypedObject t, typer.AddAndType(pub));
  ASSERT_FALSE(t.exact_types.empty());
  // It should land in the publication type: the one whose signature has
  // an ->author link.
  graph::LabelId author = g->labels().Find("author");
  bool in_publication_type = false;
  for (TypeId tt : t.exact_types) {
    for (const TypedLink& l : r->final_program.type(tt).signature.links()) {
      if (l.label == author && l.dir == Direction::kOutgoing) {
        in_publication_type = true;
      }
    }
  }
  EXPECT_TRUE(in_publication_type);
}

}  // namespace
}  // namespace schemex::typing
