#include "service/server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "catalog/workspace.h"
#include "extract/extractor.h"
#include "gen/dbg.h"
#include "gen/random_graph.h"
#include "json/json.h"
#include "service/request.h"
#include "tests/test_util.h"

namespace schemex::service {
namespace {

namespace fs = std::filesystem;

using json::Value;

/// Pulls a field out of a response result object.
const Value& Field(const Value& obj, const std::string& key) {
  auto it = obj.AsObject().find(key);
  EXPECT_NE(it, obj.AsObject().end()) << "missing field " << key;
  static const Value kNull;
  return it == obj.AsObject().end() ? kNull : it->second;
}

catalog::Workspace MakeDbgWorkspace(uint64_t seed = 3) {
  auto g = gen::MakeDbgDataset(seed);
  EXPECT_TRUE(g.ok());
  extract::ExtractorOptions opt;
  opt.target_num_types = 6;
  auto r = extract::SchemaExtractor(opt).Run(*g);
  EXPECT_TRUE(r.ok());
  catalog::Workspace ws;
  ws.SetGraph(*g);
  ws.program = r->final_program;
  ws.assignment = r->recast.assignment;
  return ws;
}

Request MakeRequest(Verb verb, int64_t id = 1) {
  Request req;
  req.id = id;
  req.verb = verb;
  return req;
}

class ServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("schemexd_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
};

TEST_F(ServiceTest, LoadWorkspaceVerb) {
  catalog::Workspace ws = MakeDbgWorkspace();
  ASSERT_OK(catalog::SaveWorkspace(ws, dir_.string()));

  Server server;
  Request req = MakeRequest(Verb::kLoadWorkspace);
  req.load.name = "dbg";
  req.load.dir = dir_.string();
  Response resp = server.Handle(req);
  ASSERT_OK(resp.status);
  EXPECT_EQ(Field(resp.result, "objects").AsNumber(), ws.graph->NumObjects());
  EXPECT_EQ(Field(resp.result, "num_types").AsNumber(), 6);
  EXPECT_EQ(server.WorkspaceNames(), std::vector<std::string>{"dbg"});

  // Loading a missing directory is a NotFound error, not a crash.
  req.load.dir = (dir_ / "missing").string();
  resp = server.Handle(req);
  EXPECT_EQ(resp.status.code(), util::StatusCode::kNotFound);
}

TEST_F(ServiceTest, ExtractVerbReplacesSchema) {
  Server server;
  catalog::Workspace ws;
  ws.graph = MakeDbgWorkspace().graph;
  ws.assignment = typing::TypeAssignment(ws.graph->NumObjects());
  ASSERT_OK(server.InstallWorkspace("dbg", std::move(ws)));

  Request req = MakeRequest(Verb::kExtract);
  req.extract.workspace = "dbg";
  req.extract.k = 6;
  req.extract.save_dir = dir_.string();
  Response resp = server.Handle(req);
  ASSERT_OK(resp.status);
  EXPECT_EQ(Field(resp.result, "num_final_types").AsNumber(), 6);
  EXPECT_GT(Field(resp.result, "num_perfect_types").AsNumber(), 6);
  EXPECT_FALSE(Field(resp.result, "auto_k").AsBool());

  // The workspace now has a schema: `type` with no inline program works.
  Request type_req = MakeRequest(Verb::kType);
  type_req.type.workspace = "dbg";
  resp = server.Handle(type_req);
  ASSERT_OK(resp.status);
  EXPECT_EQ(Field(resp.result, "num_types").AsNumber(), 6);

  // And save_dir persisted a loadable workspace.
  ASSERT_OK_AND_ASSIGN(catalog::Workspace back,
                       catalog::LoadWorkspace(dir_.string()));
  EXPECT_EQ(back.program.NumTypes(), 6u);
}

TEST_F(ServiceTest, ExtractAutoKPicksKnee) {
  Server server;
  ASSERT_OK(server.InstallWorkspace("dbg", MakeDbgWorkspace()));
  Request req = MakeRequest(Verb::kExtract);
  req.extract.workspace = "dbg";
  req.extract.k = 0;  // auto
  Response resp = server.Handle(req);
  ASSERT_OK(resp.status);
  EXPECT_TRUE(Field(resp.result, "auto_k").AsBool());
  double k = Field(resp.result, "k").AsNumber();
  EXPECT_GE(k, 1);
  EXPECT_LE(k, 20);
}

TEST_F(ServiceTest, TypeVerbWithInlineProgram) {
  Server server;
  catalog::Workspace ws;
  ws.SetGraph(test::MakeFigure2Database());
  ws.assignment = typing::TypeAssignment(ws.graph->NumObjects());
  ASSERT_OK(server.InstallWorkspace("fig2", std::move(ws)));

  Request req = MakeRequest(Verb::kType);
  req.type.workspace = "fig2";
  req.type.program = R"(
    person(X) :- link(X, Y, "is-manager-of"), firm(Y),
                 link(X, Z, "name"), atomic(Z).
    firm(X)   :- link(X, Y, "is-managed-by"), person(Y),
                 link(X, Z, "name"), atomic(Z).
  )";
  req.type.commit = true;
  Response resp = server.Handle(req);
  ASSERT_OK(resp.status);
  EXPECT_EQ(Field(resp.result, "num_types").AsNumber(), 2);
  EXPECT_EQ(Field(resp.result, "nonempty_extents").AsNumber(), 2);
  // Both extents have the two managers / two firms.
  for (const Value& t : Field(resp.result, "types").AsArray()) {
    EXPECT_EQ(Field(t, "extent").AsNumber(), 2);
  }

  // Committed: guided queries now work against the installed schema.
  Request q = MakeRequest(Verb::kQuery);
  q.query.workspace = "fig2";
  q.query.query = "is-manager-of.name";
  Response qresp = server.Handle(q);
  ASSERT_OK(qresp.status);
  EXPECT_TRUE(Field(qresp.result, "guided").AsBool());
  EXPECT_EQ(Field(qresp.result, "count").AsNumber(), 2);
}

TEST_F(ServiceTest, TypeVerbWithoutSchemaFails) {
  Server server;
  catalog::Workspace ws;
  ws.SetGraph(test::MakeFigure2Database());
  ws.assignment = typing::TypeAssignment(ws.graph->NumObjects());
  ASSERT_OK(server.InstallWorkspace("fig2", std::move(ws)));
  Request req = MakeRequest(Verb::kType);
  req.type.workspace = "fig2";
  Response resp = server.Handle(req);
  EXPECT_EQ(resp.status.code(), util::StatusCode::kFailedPrecondition);
}

TEST_F(ServiceTest, QueryVerbGuidedAndUnguided) {
  Server server;
  ASSERT_OK(server.InstallWorkspace("dbg", MakeDbgWorkspace()));

  Request req = MakeRequest(Verb::kQuery);
  req.query.workspace = "dbg";
  req.query.query = "project.name";
  req.query.limit = 5;
  Response guided = server.Handle(req);
  ASSERT_OK(guided.status);
  EXPECT_TRUE(Field(guided.result, "guided").AsBool());

  req.query.use_guide = false;
  Response unguided = server.Handle(req);
  ASSERT_OK(unguided.status);
  EXPECT_FALSE(Field(unguided.result, "guided").AsBool());

  // The guide prunes start candidates; with the exact perfect typing it
  // would be lossless, with k=6 it may under-report but never over-report.
  EXPECT_LE(Field(guided.result, "count").AsNumber(),
            Field(unguided.result, "count").AsNumber());
  EXPECT_LE(Field(guided.result, "objects").AsArray().size(), 5u);

  // Malformed query text is a clean error.
  req.query.query = "..";
  Response bad = server.Handle(req);
  EXPECT_FALSE(bad.status.ok());
}

TEST_F(ServiceTest, StatsAndListWorkspacesVerbs) {
  Server server;
  ASSERT_OK(server.InstallWorkspace("a", MakeDbgWorkspace()));

  // Generate some traffic with known counts.
  Request q = MakeRequest(Verb::kQuery);
  q.query.workspace = "a";
  q.query.query = "project";
  for (int i = 0; i < 5; ++i) ASSERT_OK(server.Handle(q).status);
  q.query.workspace = "missing";
  EXPECT_FALSE(server.Handle(q).status.ok());

  Response list = server.Handle(MakeRequest(Verb::kListWorkspaces));
  ASSERT_OK(list.status);
  ASSERT_EQ(Field(list.result, "workspaces").AsArray().size(), 1u);
  EXPECT_EQ(
      Field(Field(list.result, "workspaces").AsArray()[0], "name").AsString(),
      "a");

  Response stats = server.Handle(MakeRequest(Verb::kStats));
  ASSERT_OK(stats.status);
  bool saw_query = false;
  for (const Value& v : Field(stats.result, "verbs").AsArray()) {
    if (Field(v, "verb").AsString() == "query") {
      saw_query = true;
      EXPECT_EQ(Field(v, "count").AsNumber(), 6);   // 5 ok + 1 error
      EXPECT_EQ(Field(v, "errors").AsNumber(), 1);
      EXPECT_EQ(Field(v, "timeouts").AsNumber(), 0);
    }
  }
  EXPECT_TRUE(saw_query);
}

TEST_F(ServiceTest, MalformedJsonReturnsStructuredError) {
  Server server;
  for (const char* line :
       {"{nope", "[]", "42", "{\"verb\":\"frobnicate\"}", "{\"id\":3}",
        "{\"verb\":\"query\",\"params\":{\"workspace\":\"w\"}}",
        "{\"verb\":\"query\",\"params\":7}",
        "{\"verb\":\"extract\",\"params\":{\"workspace\":\"w\",\"k\":-1}}"}) {
    std::string out = server.HandleJsonLine(line);
    // Each malformed request yields a parseable error envelope.
    ASSERT_OK_AND_ASSIGN(Value v, json::Parse(out));
    EXPECT_FALSE(Field(v, "ok").AsBool()) << line;
    EXPECT_FALSE(Field(Field(v, "error"), "code").AsString().empty()) << line;
  }
  // A well-formed line still round-trips after all that garbage.
  std::string out = server.HandleJsonLine("{\"id\":9,\"verb\":\"stats\"}");
  ASSERT_OK_AND_ASSIGN(Value v, json::Parse(out));
  EXPECT_TRUE(Field(v, "ok").AsBool());
  EXPECT_EQ(Field(v, "id").AsNumber(), 9);
}

TEST_F(ServiceTest, QueueTimeoutPath) {
  // One worker; the head request monopolizes it long enough that a
  // queued request with a tiny budget expires before it is picked up.
  ServerOptions opt;
  opt.num_threads = 1;
  Server server(opt);

  gen::RandomGraphOptions gopt;
  gopt.num_complex = 1500;
  gopt.num_atomic = 1500;
  gopt.num_edges = 6000;
  catalog::Workspace ws;
  ws.SetGraph(gen::RandomGraph(gopt));
  ws.assignment = typing::TypeAssignment(ws.graph->NumObjects());
  ASSERT_OK(server.InstallWorkspace("rand", std::move(ws)));

  Request slow = MakeRequest(Verb::kExtract, 1);
  slow.extract.workspace = "rand";
  slow.extract.k = 5;

  std::atomic<bool> slow_done{false};
  std::thread slow_client([&] {
    Response r = server.Handle(slow);
    slow_done = true;
    EXPECT_TRUE(r.status.ok() ||
                r.status.code() == util::StatusCode::kDeadlineExceeded)
        << r.status;
  });

  // Give the worker a moment to pick up the slow request.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  Request fast = MakeRequest(Verb::kStats, 2);
  fast.timeout_s = 0.001;
  Response r = server.Handle(fast);
  EXPECT_EQ(r.status.code(), util::StatusCode::kDeadlineExceeded) << r.status;
  EXPECT_FALSE(slow_done.load());  // the worker really was busy

  slow_client.join();

  // The timeout shows up in the metrics.
  bool saw = false;
  for (const VerbStats& s : server.metrics().Snapshot()) {
    if (s.verb == "stats") {
      saw = true;
      EXPECT_GE(s.timeouts, 1u);
    }
  }
  EXPECT_TRUE(saw);
}

TEST_F(ServiceTest, ExtractDeadlineCutsPipelineMidFlight) {
  // A budget far smaller than the extraction cost: the worker picks the
  // request up immediately (free threads, so the queue check passes) and
  // the pipeline's own stage-boundary polling has to abort it.
  Server server;
  gen::RandomGraphOptions gopt;
  gopt.num_complex = 2000;
  gopt.num_atomic = 2000;
  gopt.num_edges = 9000;
  catalog::Workspace ws;
  ws.SetGraph(gen::RandomGraph(gopt));
  ws.assignment = typing::TypeAssignment(ws.graph->NumObjects());
  ASSERT_OK(server.InstallWorkspace("rand", std::move(ws)));

  Request req = MakeRequest(Verb::kExtract);
  req.extract.workspace = "rand";
  req.extract.k = 5;
  req.timeout_s = 0.005;

  // HandleAsync delivers the worker's own response (the synchronous
  // Handle would race it with its wait-timeout), so the status observed
  // here is exactly what the pipeline returned.
  std::promise<Response> delivered;
  server.HandleAsync(req, [&](Response r) { delivered.set_value(std::move(r)); });
  Response resp = delivered.get_future().get();
  EXPECT_EQ(resp.status.code(), util::StatusCode::kDeadlineExceeded)
      << resp.status;

  // The abort is recorded as a timeout, and the workspace kept its old
  // (schema-less) generation.
  bool saw = false;
  for (const VerbStats& s : server.metrics().Snapshot()) {
    if (s.verb == "extract") {
      saw = true;
      EXPECT_GE(s.timeouts, 1u);
    }
  }
  EXPECT_TRUE(saw);
  Response list = server.Handle(MakeRequest(Verb::kListWorkspaces));
  ASSERT_OK(list.status);
  EXPECT_EQ(Field(Field(list.result, "workspaces").AsArray()[0], "num_types")
                .AsNumber(),
            0);
}

TEST_F(ServiceTest, GenerationsShareOneFrozenGraph) {
  // Workspace generations produced by extract/type-commit must hold the
  // SAME FrozenGraph instance — observable as a stable graph_id — while
  // concurrent queries keep racing the swaps.
  Server server;
  ASSERT_OK(server.InstallWorkspace("dbg", MakeDbgWorkspace()));

  auto graph_id = [&]() -> double {
    Response list = server.Handle(MakeRequest(Verb::kListWorkspaces));
    EXPECT_TRUE(list.status.ok()) << list.status;
    return Field(Field(list.result, "workspaces").AsArray()[0], "graph_id")
        .AsNumber();
  };
  const double original_id = graph_id();
  EXPECT_GT(original_id, 0);

  std::atomic<bool> stop{false};
  std::atomic<int> query_fail{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; !stop.load(); ++i) {
        Request req = MakeRequest(Verb::kQuery, t * 1000 + i);
        req.query.workspace = "dbg";
        req.query.query = "project.name";
        if (!server.Handle(req).status.ok()) ++query_fail;
      }
    });
  }
  for (int i = 0; i < 6; ++i) {
    Request req = MakeRequest(Verb::kExtract, 9000 + i);
    req.extract.workspace = "dbg";
    req.extract.k = (i % 2 == 0) ? 6 : 9;
    ASSERT_OK(server.Handle(req).status);
    // Every re-extract swapped the generation but kept the graph.
    EXPECT_EQ(graph_id(), original_id) << "generation " << i;
  }
  stop = true;
  for (auto& t : clients) t.join();
  EXPECT_EQ(query_fail.load(), 0);

  // stats agrees: one distinct graph, with a real footprint, even though
  // seven generations (1 install + 6 extracts) came and went.
  Response stats = server.Handle(MakeRequest(Verb::kStats));
  ASSERT_OK(stats.status);
  EXPECT_EQ(Field(stats.result, "distinct_graphs").AsNumber(), 1);
  EXPECT_GT(Field(stats.result, "graph_bytes").AsNumber(), 0);

  // A fresh install is a genuinely new snapshot: the id changes.
  ASSERT_OK(server.InstallWorkspace("dbg", MakeDbgWorkspace()));
  EXPECT_NE(graph_id(), original_id);
}

TEST_F(ServiceTest, ConcurrentQueriesVsReExtract) {
  // The acceptance scenario: >= 4 client threads of queries interleaved
  // with re-extracts against the same workspace. Every request must see
  // a consistent snapshot (no torn workspace, no crash), and the per-verb
  // counters must add up exactly.
  Server server;
  ASSERT_OK(server.InstallWorkspace("dbg", MakeDbgWorkspace()));

  constexpr int kQueryThreads = 4;
  constexpr int kQueriesPerThread = 50;
  constexpr int kExtracts = 4;

  std::atomic<int> query_fail{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kQueryThreads; ++t) {
    clients.emplace_back([&, t] {
      const char* queries[] = {"project.name", "author.name", "*.email",
                               "member"};
      for (int i = 0; i < kQueriesPerThread; ++i) {
        Request req = MakeRequest(Verb::kQuery, t * 1000 + i);
        req.query.workspace = "dbg";
        req.query.query = queries[(t + i) % 4];
        req.query.limit = 3;
        Response resp = server.Handle(req);
        if (!resp.status.ok()) ++query_fail;
      }
    });
  }
  clients.emplace_back([&] {
    for (int i = 0; i < kExtracts; ++i) {
      Request req = MakeRequest(Verb::kExtract, 9000 + i);
      req.extract.workspace = "dbg";
      req.extract.k = (i % 2 == 0) ? 6 : 9;  // alternate schema sizes
      Response resp = server.Handle(req);
      EXPECT_TRUE(resp.status.ok()) << resp.status;
    }
  });
  for (auto& t : clients) t.join();

  EXPECT_EQ(query_fail.load(), 0);

  // Counters are exact: no request lost, none double-counted.
  uint64_t query_count = 0, extract_count = 0, errors = 0;
  for (const VerbStats& s : server.metrics().Snapshot()) {
    if (s.verb == "query") {
      query_count = s.count;
      errors += s.errors;
    }
    if (s.verb == "extract") {
      extract_count = s.count;
      errors += s.errors;
    }
  }
  EXPECT_EQ(query_count,
            static_cast<uint64_t>(kQueryThreads * kQueriesPerThread));
  EXPECT_EQ(extract_count, static_cast<uint64_t>(kExtracts));
  EXPECT_EQ(errors, 0u);

  // The last installed schema has 6 or 9 types and still validates.
  Response list = server.Handle(MakeRequest(Verb::kListWorkspaces));
  ASSERT_OK(list.status);
  double ntypes = Field(Field(list.result, "workspaces").AsArray()[0],
                        "num_types")
                      .AsNumber();
  EXPECT_TRUE(ntypes == 6 || ntypes == 9) << ntypes;
}

TEST_F(ServiceTest, RequestJsonRoundTrip) {
  // ParseRequestJson accepts what docs/service.md promises.
  ASSERT_OK_AND_ASSIGN(
      Request req,
      ParseRequestJson(R"({"id": 7, "verb": "extract", "timeout_s": 2.5,
        "params": {"workspace": "dbg", "k": 6, "decompose_roles": true,
                   "stage1": "gfp", "epsilon": 1.5}})"));
  EXPECT_EQ(req.id, 7);
  EXPECT_EQ(req.verb, Verb::kExtract);
  EXPECT_DOUBLE_EQ(req.timeout_s, 2.5);
  EXPECT_EQ(req.extract.workspace, "dbg");
  EXPECT_EQ(req.extract.k, 6u);
  EXPECT_TRUE(req.extract.decompose_roles);
  EXPECT_EQ(req.extract.stage1, "gfp");
  EXPECT_DOUBLE_EQ(req.extract.epsilon, 1.5);

  Response resp;
  resp.id = 7;
  resp.status = util::Status::NotFound("nope");
  std::string line = SerializeResponse(resp);
  ASSERT_OK_AND_ASSIGN(Value v, json::Parse(line));
  EXPECT_EQ(Field(v, "id").AsNumber(), 7);
  EXPECT_FALSE(Field(v, "ok").AsBool());
  EXPECT_EQ(Field(Field(v, "error"), "code").AsString(), "NotFound");
}

}  // namespace
}  // namespace schemex::service
