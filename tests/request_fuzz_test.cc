// Seeded random-mutation property test for the request-parsing surface:
// whatever bytes a client sends, the parser and the server must answer
// with a structured error envelope — never a crash, hang, or empty
// response. Runs under the ASan+UBSan CI job, where "never a crash"
// becomes "never an out-of-bounds read" too.

#include <gtest/gtest.h>

#include <algorithm>
#include <iterator>
#include <random>
#include <string>
#include <vector>

#include "json/json.h"
#include "service/framer.h"
#include "service/request.h"
#include "service/server.h"
#include "util/status.h"

namespace schemex::service {
namespace {

using json::Value;

const Value& Field(const Value& obj, const std::string& key) {
  auto it = obj.AsObject().find(key);
  EXPECT_NE(it, obj.AsObject().end()) << "missing field " << key;
  static const Value kNull;
  return it == obj.AsObject().end() ? kNull : it->second;
}

/// Well-formed seeds covering every verb and most params, which the
/// mutator then corrupts. Mutants of valid requests probe much deeper
/// into the parser than pure noise does.
const char* kSeeds[] = {
    R"({"id":1,"verb":"stats"})",
    R"({"id":2,"verb":"list_workspaces"})",
    R"({"id":3,"verb":"load_workspace","params":{"name":"w","dir":"/nope"}})",
    R"({"id":4,"verb":"extract","timeout_s":1.5,"params":{"workspace":"w","k":6,"epsilon":1.25,"max_types":20,"stage1":"gfp","decompose_roles":true,"save_dir":""}})",
    R"({"id":5,"verb":"type","params":{"workspace":"w","program":"a(X) :- link(X,Y,\"n\"), atomic(Y).","commit":false}})",
    R"({"id":6,"verb":"query","params":{"workspace":"w","query":"a.b","use_guide":true,"limit":10}})",
};

std::string Mutate(const std::string& seed, std::mt19937& rng) {
  std::string s = seed;
  std::uniform_int_distribution<int> kind_dist(0, 5);
  switch (kind_dist(rng)) {
    case 0: {  // truncate
      if (s.empty()) return s;
      s.resize(std::uniform_int_distribution<size_t>(0, s.size() - 1)(rng));
      return s;
    }
    case 1: {  // flip random bytes
      int flips = std::uniform_int_distribution<int>(1, 8)(rng);
      for (int i = 0; i < flips && !s.empty(); ++i) {
        size_t pos =
            std::uniform_int_distribution<size_t>(0, s.size() - 1)(rng);
        s[pos] = static_cast<char>(
            std::uniform_int_distribution<int>(0, 255)(rng));
      }
      return s;
    }
    case 2: {  // insert NUL bytes
      int nuls = std::uniform_int_distribution<int>(1, 3)(rng);
      for (int i = 0; i < nuls; ++i) {
        size_t pos = std::uniform_int_distribution<size_t>(0, s.size())(rng);
        s.insert(pos, 1, '\0');
      }
      return s;
    }
    case 3: {  // splice two seeds at random offsets
      const std::string other =
          kSeeds[std::uniform_int_distribution<size_t>(
              0, std::size(kSeeds) - 1)(rng)];
      size_t a = std::uniform_int_distribution<size_t>(0, s.size())(rng);
      size_t b =
          std::uniform_int_distribution<size_t>(0, other.size())(rng);
      return s.substr(0, a) + other.substr(b);
    }
    case 4: {  // duplicate a random chunk (nested-garbage generator)
      if (s.size() < 2) return s + s;
      size_t a = std::uniform_int_distribution<size_t>(0, s.size() - 2)(rng);
      size_t len = std::uniform_int_distribution<size_t>(
          1, s.size() - 1 - a)(rng);
      return s.substr(0, a) + s.substr(a, len) + s.substr(a);
    }
    default: {  // oversize: balloon a tail of junk onto the seed
      std::string big(
          std::uniform_int_distribution<size_t>(1, 4096)(rng),
          static_cast<char>(std::uniform_int_distribution<int>(32, 126)(rng)));
      return s + big;
    }
  }
}

TEST(RequestFuzzTest, ParserNeverCrashesAndAlwaysAnswersStructured) {
  std::mt19937 rng(0xC0FFEE);  // seeded: failures reproduce
  constexpr int kIters = 4000;
  for (int i = 0; i < kIters; ++i) {
    std::string mutant =
        Mutate(kSeeds[i % std::size(kSeeds)], rng);
    auto req = ParseRequestJson(mutant);
    if (req.ok()) continue;  // a mutant may stay valid; that's fine
    // A rejected line must carry a structured argument/parse error, not
    // an internal one, and must say why.
    EXPECT_TRUE(req.status().code() == util::StatusCode::kInvalidArgument ||
                req.status().code() == util::StatusCode::kParseError)
        << req.status() << " for: " << mutant;
    EXPECT_FALSE(req.status().message().empty());
  }
}

TEST(RequestFuzzTest, ServerAnswersEveryMutantWithAnEnvelope) {
  // End-to-end through HandleJsonLine: valid mutants execute against an
  // empty cache (workspace verbs fail NotFound, stats succeeds), invalid
  // ones get the error envelope. Every response must be one parseable
  // JSON object with an "ok" field — never empty, never a crash.
  ServerOptions opt;
  opt.num_threads = 2;
  Server server(opt);
  std::mt19937 rng(0xBADCAFE);
  constexpr int kIters = 1500;
  for (int i = 0; i < kIters; ++i) {
    std::string mutant = Mutate(kSeeds[i % std::size(kSeeds)], rng);
    std::string out = server.HandleJsonLine(mutant);
    ASSERT_FALSE(out.empty()) << "empty response for: " << mutant;
    auto v = json::Parse(out);
    ASSERT_TRUE(v.ok()) << out;
    const Value& ok = Field(*v, "ok");
    ASSERT_EQ(ok.kind(), Value::Kind::kBool) << out;
    if (!ok.AsBool()) {
      EXPECT_FALSE(Field(Field(*v, "error"), "code").AsString().empty())
          << out;
    }
  }
}

TEST(RequestFuzzTest, FramerSurvivesMutantByteStreams) {
  // The same mutants, concatenated into one byte stream with newline
  // framing, chopped at random: the framer must emit only clean lines or
  // kInvalidArgument, and terminate.
  std::mt19937 rng(0xFEEDFACE);
  FramerOptions fopt;
  fopt.max_line_bytes = 512;
  Framer framer(fopt);
  std::string stream;
  for (int i = 0; i < 500; ++i) {
    stream += Mutate(kSeeds[i % std::size(kSeeds)], rng);
    stream.push_back(i % 7 == 0 ? ' ' : '\n');  // some lines run together
  }
  size_t off = 0;
  size_t lines = 0, errors = 0;
  while (off < stream.size()) {
    size_t chunk =
        std::uniform_int_distribution<size_t>(1, 4096)(rng);
    chunk = std::min(chunk, stream.size() - off);
    framer.Feed(std::string_view(stream).substr(off, chunk));
    off += chunk;
    util::StatusOr<std::string> line = std::string();
    while (framer.Next(&line)) {
      ++lines;
      if (!line.ok()) {
        ++errors;
        EXPECT_EQ(line.status().code(), util::StatusCode::kInvalidArgument);
      } else {
        EXPECT_LE(line->size(), fopt.max_line_bytes);
        EXPECT_EQ(line->find('\0'), std::string::npos);
      }
    }
  }
  framer.Finish();
  util::StatusOr<std::string> line = std::string();
  while (framer.Next(&line)) ++lines;
  EXPECT_GT(lines, 0u);
  EXPECT_GT(errors, 0u);  // the mutator reliably produces oversized/NUL lines
}

}  // namespace
}  // namespace schemex::service
