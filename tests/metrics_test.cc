#include "service/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

namespace schemex::service {
namespace {

TEST(MetricsTest, ZeroObservationsSnapshotIsEmpty) {
  MetricsRegistry m;
  EXPECT_TRUE(m.Snapshot().empty());
  EXPECT_TRUE(m.CounterSnapshot().empty());
}

TEST(MetricsTest, ZeroAndNegligibleLatencyLandInFirstBucket) {
  MetricsRegistry m;
  m.Record("q", 0.0, /*ok=*/true, /*timeout=*/false);
  m.Record("q", 1e-9, /*ok=*/true, /*timeout=*/false);
  auto snap = m.Snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].count, 2u);
  EXPECT_EQ(snap[0].errors, 0u);
  // Percentiles are clamped to the observed max, so a 0 ms max yields
  // 0 ms percentiles, not the first bucket's upper bound.
  EXPECT_DOUBLE_EQ(snap[0].max_ms, 1e-9);
  EXPECT_LE(snap[0].p50_ms, snap[0].max_ms);
  EXPECT_LE(snap[0].p99_ms, snap[0].max_ms);
}

TEST(MetricsTest, BucketLadderIsMonotoneAndCoversTheTail) {
  double prev = 0;
  for (size_t i = 0; i < MetricsRegistry::kNumBuckets; ++i) {
    double upper = MetricsRegistry::BucketUpperMs(i);
    EXPECT_GT(upper, prev) << "bucket " << i;
    prev = upper;
  }
  // The ladder tops out far past any plausible request latency.
  EXPECT_GT(prev, 1e9);
}

TEST(MetricsTest, MaxBucketOverflowIsClampedNotLost) {
  MetricsRegistry m;
  // A latency beyond the last bucket's upper bound must still count and
  // must not push the percentile past the ladder (or the true max).
  const double huge_ms = 1e18;
  m.Record("slow", huge_ms, /*ok=*/true, /*timeout=*/false);
  auto snap = m.Snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].count, 1u);
  EXPECT_DOUBLE_EQ(snap[0].max_ms, huge_ms);
  const double last_upper =
      MetricsRegistry::BucketUpperMs(MetricsRegistry::kNumBuckets - 1);
  EXPECT_DOUBLE_EQ(snap[0].p50_ms, last_upper);
  EXPECT_DOUBLE_EQ(snap[0].p99_ms, last_upper);
  EXPECT_LE(snap[0].p99_ms, snap[0].max_ms);
}

TEST(MetricsTest, PercentilesBracketTheDistribution) {
  MetricsRegistry m;
  // 50 fast observations and two slow ones: p50 stays near the fast
  // mass; p99's rank (ceil(0.99 * 52) = 52) lands in the slow tail.
  for (int i = 0; i < 50; ++i) {
    m.Record("v", 0.01, /*ok=*/true, /*timeout=*/false);
  }
  m.Record("v", 100.0, /*ok=*/true, /*timeout=*/false);
  m.Record("v", 100.0, /*ok=*/true, /*timeout=*/false);
  auto snap = m.Snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_LT(snap[0].p50_ms, 0.1);
  EXPECT_GT(snap[0].p99_ms, 10.0);
  EXPECT_LE(snap[0].p99_ms, snap[0].max_ms);
}

TEST(MetricsTest, ConcurrentObserveFromManyThreadsLosesNothing) {
  MetricsRegistry m;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&m, t] {
      for (int i = 0; i < kPerThread; ++i) {
        // Mix verbs, latencies spanning many buckets, and error/timeout
        // flags so every counter is contended.
        const bool err = i % 10 == 0;
        const bool timeout = i % 20 == 0;
        m.Record(t % 2 == 0 ? "a" : "b",
                 std::pow(10.0, (i % 7) - 3),  // 1us .. 1000ms
                 !err, timeout);
        m.AddCounter("tcp.bytes_in", 3);
        m.AddCounter("tcp.connections_open", i % 2 == 0 ? 1 : -1);
      }
    });
  }
  for (auto& t : threads) t.join();

  uint64_t count = 0, errors = 0, timeouts = 0;
  double total_ms = 0;
  for (const VerbStats& s : m.Snapshot()) {
    count += s.count;
    errors += s.errors;
    timeouts += s.timeouts;
    total_ms += s.total_ms;
  }
  EXPECT_EQ(count, static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(errors, static_cast<uint64_t>(kThreads * kPerThread / 10));
  EXPECT_EQ(timeouts, static_cast<uint64_t>(kThreads * kPerThread / 20));
  // Each thread contributes the same latency sum; the aggregate must be
  // exact up to floating-point addition order.
  double per_thread = 0;
  for (int i = 0; i < kPerThread; ++i) per_thread += std::pow(10.0, (i % 7) - 3);
  EXPECT_NEAR(total_ms, per_thread * kThreads, total_ms * 1e-9);

  int64_t bytes = -1, open_gauge = -1;
  for (const auto& [name, value] : m.CounterSnapshot()) {
    if (name == "tcp.bytes_in") bytes = value;
    if (name == "tcp.connections_open") open_gauge = value;
  }
  EXPECT_EQ(bytes, static_cast<int64_t>(kThreads) * kPerThread * 3);
  EXPECT_EQ(open_gauge, 0);  // equal +1/-1 mix per thread
}

TEST(MetricsTest, CounterSnapshotSortedAndSigned) {
  MetricsRegistry m;
  m.AddCounter("z", 5);
  m.AddCounter("a", -2);
  m.AddCounter("z", -10);
  auto counters = m.CounterSnapshot();
  ASSERT_EQ(counters.size(), 2u);
  EXPECT_EQ(counters[0].first, "a");
  EXPECT_EQ(counters[0].second, -2);
  EXPECT_EQ(counters[1].first, "z");
  EXPECT_EQ(counters[1].second, -5);
}

}  // namespace
}  // namespace schemex::service
