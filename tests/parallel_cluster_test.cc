// Parallel Stages 2-3 correctness: the sharded greedy clustering, the
// k-center matrix, and the recast fallback must be *bit-identical* to
// their sequential references for every thread count — merge sequence,
// snapshots, and assignments included — and cancellation must fire inside
// the stages, not only at their boundaries.

#include <vector>

#include <gtest/gtest.h>

#include "cluster/greedy.h"
#include "cluster/kcenter.h"
#include "gen/dbg.h"
#include "gen/random_graph.h"
#include "gen/spec.h"
#include "graph/graph_builder.h"
#include "test_util.h"
#include "typing/perfect_typing.h"
#include "typing/recast.h"
#include "util/parallel_for.h"

namespace schemex {
namespace {

using cluster::ClusteringOptions;
using cluster::ClusteringResult;
using cluster::PsiKind;
using typing::TypeId;
using typing::TypedLink;
using typing::TypeSignature;
using typing::TypingProgram;

void ExpectSameSteps(const ClusteringResult& got, const ClusteringResult& want,
                     const std::string& context) {
  ASSERT_EQ(got.steps.size(), want.steps.size()) << context;
  for (size_t i = 0; i < want.steps.size(); ++i) {
    EXPECT_EQ(got.steps[i].num_types_after, want.steps[i].num_types_after)
        << context << " step " << i;
    EXPECT_EQ(got.steps[i].source, want.steps[i].source)
        << context << " step " << i;
    EXPECT_EQ(got.steps[i].dest, want.steps[i].dest)
        << context << " step " << i;
    EXPECT_EQ(got.steps[i].simple_d, want.steps[i].simple_d)
        << context << " step " << i;
    EXPECT_DOUBLE_EQ(got.steps[i].cost, want.steps[i].cost)
        << context << " step " << i;
  }
}

void ExpectIdenticalClustering(const ClusteringResult& got,
                               const ClusteringResult& want,
                               const std::string& context) {
  ExpectSameSteps(got, want, context);
  EXPECT_EQ(got.final_program, want.final_program) << context;
  EXPECT_EQ(got.final_map, want.final_map) << context;
  EXPECT_EQ(got.final_weights, want.final_weights) << context;
  EXPECT_DOUBLE_EQ(got.total_distance, want.total_distance) << context;
  ASSERT_EQ(got.snapshots.size(), want.snapshots.size()) << context;
  for (size_t i = 0; i < want.snapshots.size(); ++i) {
    EXPECT_EQ(got.snapshots[i].num_types, want.snapshots[i].num_types);
    EXPECT_EQ(got.snapshots[i].program, want.snapshots[i].program);
    EXPECT_EQ(got.snapshots[i].stage1_to_snapshot,
              want.snapshots[i].stage1_to_snapshot);
    EXPECT_DOUBLE_EQ(got.snapshots[i].total_distance,
                     want.snapshots[i].total_distance);
  }
}

class ParallelClusterProperty : public ::testing::TestWithParam<uint64_t> {
 protected:
  graph::DataGraph MakeGraph() const {
    gen::RandomGraphOptions opt;
    opt.num_complex = 120;
    opt.num_atomic = 60;
    opt.num_edges = 400;
    opt.num_labels = 4;
    opt.seed = GetParam();
    return gen::RandomGraph(opt);
  }
};

TEST_P(ParallelClusterProperty, GreedyIdenticalAcrossThreadCounts) {
  graph::DataGraph g = MakeGraph();
  ASSERT_OK_AND_ASSIGN(typing::PerfectTypingResult stage1,
                       typing::PerfectTypingViaRefinement(g));
  for (PsiKind psi : {PsiKind::kPsi2, PsiKind::kPsi1, PsiKind::kSimpleD}) {
    for (bool empty : {true, false}) {
      ClusteringOptions copt;
      copt.psi = psi;
      copt.target_num_types = 3;
      copt.enable_empty_type = empty;
      copt.record_snapshots = true;
      ASSERT_OK_AND_ASSIGN(
          ClusteringResult ref,
          cluster::ClusterTypes(stage1.program, stage1.weight, copt));
      for (size_t threads : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
        typing::ExecOptions exec;
        exec.num_threads = threads;
        ASSERT_OK_AND_ASSIGN(ClusteringResult got,
                             cluster::ClusterTypes(stage1.program,
                                                   stage1.weight, copt, exec));
        ExpectIdenticalClustering(
            got, ref,
            std::string(cluster::PsiKindName(psi)) +
                (empty ? "+empty" : "") + " threads=" +
                std::to_string(threads));
      }
    }
  }
}

TEST_P(ParallelClusterProperty, KCenterIdenticalAcrossThreadCounts) {
  graph::DataGraph g = MakeGraph();
  ASSERT_OK_AND_ASSIGN(typing::PerfectTypingResult stage1,
                       typing::PerfectTypingViaRefinement(g));
  ASSERT_OK_AND_ASSIGN(
      cluster::KCenterResult ref,
      cluster::KCenterCluster(stage1.program, stage1.weight, 4));
  for (size_t threads : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    typing::ExecOptions exec;
    exec.num_threads = threads;
    ASSERT_OK_AND_ASSIGN(
        cluster::KCenterResult got,
        cluster::KCenterCluster(stage1.program, stage1.weight, 4, exec));
    EXPECT_EQ(got.program, ref.program) << threads;
    EXPECT_EQ(got.map, ref.map) << threads;
    EXPECT_EQ(got.weights, ref.weights) << threads;
    EXPECT_EQ(got.medoids, ref.medoids) << threads;
    EXPECT_EQ(got.radius, ref.radius) << threads;
  }
}

TEST_P(ParallelClusterProperty, RecastIdenticalAcrossThreadCounts) {
  // Cluster aggressively with the empty type on, so the recast has real
  // stragglers (homes dropped by empty moves) exercising the speculative
  // fallback, then pin assignment identity across thread counts.
  graph::DataGraph g = MakeGraph();
  ASSERT_OK_AND_ASSIGN(typing::PerfectTypingResult stage1,
                       typing::PerfectTypingViaRefinement(g));
  ClusteringOptions copt;
  copt.target_num_types = 2;
  ASSERT_OK_AND_ASSIGN(
      ClusteringResult clustering,
      cluster::ClusterTypes(stage1.program, stage1.weight, copt));

  std::vector<std::vector<TypeId>> homes(g.NumObjects());
  for (size_t o = 0; o < stage1.home.size(); ++o) {
    if (stage1.home[o] == typing::kInvalidType) continue;
    TypeId m = clustering.final_map[static_cast<size_t>(stage1.home[o])];
    if (m != cluster::kEmptyType) homes[o] = {m};
  }

  ASSERT_OK_AND_ASSIGN(
      typing::RecastResult ref,
      typing::Recast(clustering.final_program, g, homes));
  for (size_t threads : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    typing::ExecOptions exec;
    exec.num_threads = threads;
    ASSERT_OK_AND_ASSIGN(
        typing::RecastResult got,
        typing::Recast(clustering.final_program, g, homes, {}, exec));
    EXPECT_EQ(got.assignment, ref.assignment) << threads;
    EXPECT_EQ(got.num_exact, ref.num_exact) << threads;
    EXPECT_EQ(got.num_fallback, ref.num_fallback) << threads;
    EXPECT_EQ(got.num_untyped, ref.num_untyped) << threads;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelClusterProperty,
                         ::testing::Values(1, 7, 42, 1234, 99991));

TEST(ParallelCluster, ForcedTiesBreakTowardLowestSourceDest) {
  // Three types {->a^0, ->p_i^0}: every merge costs d = 2 under kSimpleD,
  // and each |signature| = 2 prices the empty move at 2 as well — a
  // three-way tie. The deterministic order must pick the lowest (source,
  // dest) pair and the empty move must lose, at every thread count.
  TypingProgram program;
  program.AddType("t0", TypeSignature::FromLinks(
                            {TypedLink::OutAtomic(0), TypedLink::OutAtomic(1)}));
  program.AddType("t1", TypeSignature::FromLinks(
                            {TypedLink::OutAtomic(0), TypedLink::OutAtomic(2)}));
  program.AddType("t2", TypeSignature::FromLinks(
                            {TypedLink::OutAtomic(0), TypedLink::OutAtomic(3)}));
  std::vector<uint32_t> weights = {1, 1, 1};

  ClusteringOptions copt;
  copt.psi = PsiKind::kSimpleD;
  copt.target_num_types = 1;
  copt.enable_empty_type = true;
  for (size_t threads : {size_t{1}, size_t{2}, size_t{4}}) {
    typing::ExecOptions exec;
    exec.num_threads = threads;
    ASSERT_OK_AND_ASSIGN(ClusteringResult got,
                         cluster::ClusterTypes(program, weights, copt, exec));
    ASSERT_EQ(got.steps.size(), 2u) << threads;
    EXPECT_EQ(got.steps[0].source, 0) << threads;
    EXPECT_EQ(got.steps[0].dest, 1) << threads;
    EXPECT_DOUBLE_EQ(got.steps[0].cost, 2.0) << threads;
    // The empty move never wins a tie against a real destination.
    EXPECT_NE(got.steps[0].dest, cluster::kEmptyType);
    EXPECT_NE(got.steps[1].dest, cluster::kEmptyType);
  }
}

TEST(ParallelCluster, StragglerSeesEarlierFallbackAssignment) {
  // Chain o0 -m-> o1 -m-> o2, with o0 -x-> atom. Program:
  //   t0 = {->x^0}          (o0, exactly, via GFP)
  //   t1 = {<-m^t0, ->x^0}  (nobody exactly)
  //   t2 = {<-m^t1}         (nobody exactly)
  // Sequential fallback, in object order: o1's picture {<-m^t0} is
  // nearest t1 (d=1); o2's picture *after o1 is typed* is {<-m^t1},
  // nearest t2 at d=0. Speculating o2 against the pre-fallback
  // assignment would give t0 (empty picture ties t0/t2, lowest id wins)
  // — so this pins that the parallel reduce recomputes stragglers whose
  // neighbor was assigned earlier in the pass.
  graph::GraphBuilder b;
  EXPECT_OK(b.Complex("o0"));
  EXPECT_OK(b.Complex("o1"));
  EXPECT_OK(b.Complex("o2"));
  EXPECT_OK(b.Atomic("a", "v"));
  EXPECT_OK(b.Edge("o0", "x", "a"));
  EXPECT_OK(b.Edge("o0", "m", "o1"));
  EXPECT_OK(b.Edge("o1", "m", "o2"));
  util::Status st;
  graph::DataGraph g = std::move(b).Build(&st);
  ASSERT_OK(st);
  graph::LabelId x = g.labels().Find("x");
  graph::LabelId m = g.labels().Find("m");
  ASSERT_NE(x, graph::kInvalidLabel);
  ASSERT_NE(m, graph::kInvalidLabel);

  TypingProgram program;
  program.AddType("t0", TypeSignature::FromLinks({TypedLink::Out(x, typing::kAtomicType)}));
  program.AddType("t1", TypeSignature::FromLinks(
                            {TypedLink::In(m, 0), TypedLink::Out(x, typing::kAtomicType)}));
  program.AddType("t2", TypeSignature::FromLinks({TypedLink::In(m, 1)}));

  std::vector<std::vector<TypeId>> homes(g.NumObjects());
  ASSERT_OK_AND_ASSIGN(typing::RecastResult ref,
                       typing::Recast(program, g, homes));
  EXPECT_EQ(ref.num_exact, 1u);
  EXPECT_EQ(ref.num_fallback, 2u);
  ASSERT_EQ(ref.assignment.TypesOf(1).size(), 1u);
  EXPECT_EQ(ref.assignment.TypesOf(1)[0], 1);  // o1 -> t1
  ASSERT_EQ(ref.assignment.TypesOf(2).size(), 1u);
  EXPECT_EQ(ref.assignment.TypesOf(2)[0], 2);  // o2 -> t2, NOT speculative t0

  for (size_t threads : {size_t{2}, size_t{4}}) {
    typing::ExecOptions exec;
    exec.num_threads = threads;
    ASSERT_OK_AND_ASSIGN(typing::RecastResult got,
                         typing::Recast(program, g, homes, {}, exec));
    EXPECT_EQ(got.assignment, ref.assignment) << threads;
    EXPECT_EQ(got.num_fallback, ref.num_fallback) << threads;
  }
}

TEST(ParallelCluster, Stage2CancellationBeforeMergeSteps) {
  // Count how many polls a full clustering makes, then cancel on the last
  // poll of a fresh run — the abort must surface mid-stage, with the
  // hook's status verbatim.
  gen::DatasetSpec spec = gen::DbgSpec();
  ASSERT_OK_AND_ASSIGN(graph::DataGraph g, gen::Generate(spec, 4242));
  ASSERT_OK_AND_ASSIGN(typing::PerfectTypingResult stage1,
                       typing::PerfectTypingViaRefinement(g));
  ClusteringOptions copt;
  copt.target_num_types = 1;

  size_t total_polls = 0;
  typing::ExecOptions count_exec;
  count_exec.num_threads = 2;
  count_exec.check_cancel = [&total_polls] {
    ++total_polls;
    return util::Status::OK();
  };
  ASSERT_OK(cluster::ClusterTypes(stage1.program, stage1.weight, copt,
                                  count_exec)
                .status());
  ASSERT_GT(total_polls, 1u) << "expected a multi-merge clustering";

  size_t polls = 0;
  const size_t cancel_at = total_polls;
  typing::ExecOptions exec;
  exec.num_threads = 2;
  exec.check_cancel = [&polls, cancel_at] {
    return ++polls >= cancel_at
               ? util::Status::DeadlineExceeded("stage2 cancel")
               : util::Status::OK();
  };
  auto result = cluster::ClusterTypes(stage1.program, stage1.weight, copt, exec);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kDeadlineExceeded);
  EXPECT_EQ(result.status().message(), "stage2 cancel");
}

TEST(ParallelCluster, Stage3CancellationMidRecast) {
  gen::DatasetSpec spec = gen::DbgSpec();
  ASSERT_OK_AND_ASSIGN(graph::DataGraph g, gen::Generate(spec, 4242));
  ASSERT_OK_AND_ASSIGN(typing::PerfectTypingResult stage1,
                       typing::PerfectTypingViaRefinement(g));
  std::vector<std::vector<TypeId>> homes(g.NumObjects());
  for (size_t o = 0; o < stage1.home.size(); ++o) {
    if (stage1.home[o] != typing::kInvalidType) homes[o] = {stage1.home[o]};
  }

  size_t total_polls = 0;
  typing::ExecOptions count_exec;
  count_exec.num_threads = 2;
  count_exec.check_cancel = [&total_polls] {
    ++total_polls;
    return util::Status::OK();
  };
  ASSERT_OK(typing::Recast(stage1.program, g, homes, {}, count_exec).status());
  ASSERT_GT(total_polls, 1u) << "expected polls beyond the GFP";

  size_t polls = 0;
  const size_t cancel_at = total_polls;
  typing::ExecOptions exec;
  exec.num_threads = 2;
  exec.check_cancel = [&polls, cancel_at] {
    return ++polls >= cancel_at
               ? util::Status::DeadlineExceeded("stage3 cancel")
               : util::Status::OK();
  };
  auto result = typing::Recast(stage1.program, g, homes, {}, exec);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kDeadlineExceeded);
  EXPECT_EQ(result.status().message(), "stage3 cancel");
}

TEST(ParallelCluster, ExternalPoolIsShared) {
  // An externally owned pool serves multiple clustering calls without
  // being torn down, and the results still match the inline reference.
  gen::RandomGraphOptions opt;
  opt.num_complex = 60;
  opt.num_atomic = 30;
  opt.num_edges = 200;
  opt.num_labels = 3;
  opt.seed = 5;
  graph::DataGraph g = gen::RandomGraph(opt);
  ASSERT_OK_AND_ASSIGN(typing::PerfectTypingResult stage1,
                       typing::PerfectTypingViaRefinement(g));
  ClusteringOptions copt;
  copt.target_num_types = 2;
  ASSERT_OK_AND_ASSIGN(
      ClusteringResult ref,
      cluster::ClusterTypes(stage1.program, stage1.weight, copt));

  util::PoolRef pool(nullptr, 4);
  typing::ExecOptions exec;
  exec.pool = pool.get();
  exec.num_threads = 4;
  for (int round = 0; round < 3; ++round) {
    ASSERT_OK_AND_ASSIGN(
        ClusteringResult got,
        cluster::ClusterTypes(stage1.program, stage1.weight, copt, exec));
    ExpectIdenticalClustering(got, ref, "external pool");
  }
}

}  // namespace
}  // namespace schemex
