#include <gtest/gtest.h>

#include "relational/csv.h"
#include "relational/import.h"
#include "tests/test_util.h"
#include "typing/perfect_typing.h"

namespace schemex::relational {
namespace {

TEST(CsvTest, BasicParsing) {
  ASSERT_OK_AND_ASSIGN(Csv csv, ParseCsv("a,b,c\n1,2,3\n4,5,6\n"));
  EXPECT_EQ(csv.header, (std::vector<std::string>{"a", "b", "c"}));
  ASSERT_EQ(csv.NumRows(), 2u);
  EXPECT_EQ(csv.rows[1][2], "6");
  EXPECT_EQ(csv.FindColumn("b"), 1u);
  EXPECT_EQ(csv.FindColumn("z"), Csv::npos);
}

TEST(CsvTest, QuotingRules) {
  ASSERT_OK_AND_ASSIGN(
      Csv csv, ParseCsv("name,notes\n\"Smith, John\",\"said \"\"hi\"\"\"\n"
                        "plain,\"multi\nline\"\n"));
  EXPECT_EQ(csv.rows[0][0], "Smith, John");
  EXPECT_EQ(csv.rows[0][1], "said \"hi\"");
  EXPECT_EQ(csv.rows[1][1], "multi\nline");
}

TEST(CsvTest, MissingTrailingNewlineAndCrLf) {
  ASSERT_OK_AND_ASSIGN(Csv csv, ParseCsv("a,b\r\n1,2\r\n3,4"));
  EXPECT_EQ(csv.NumRows(), 2u);
  EXPECT_EQ(csv.rows[1][1], "4");
}

TEST(CsvTest, EmptyCellsSurvive) {
  ASSERT_OK_AND_ASSIGN(Csv csv, ParseCsv("a,b\n,x\ny,\n"));
  EXPECT_EQ(csv.rows[0][0], "");
  EXPECT_EQ(csv.rows[1][1], "");
}

TEST(CsvTest, Malformed) {
  EXPECT_FALSE(ParseCsv("").ok());
  EXPECT_FALSE(ParseCsv("a,b\n1\n").ok());          // ragged row
  EXPECT_FALSE(ParseCsv("a,b\n1,2,3\n").ok());      // ragged row
  EXPECT_FALSE(ParseCsv("a\n\"open\n").ok());       // unterminated quote
  EXPECT_FALSE(ParseCsv("a\nx\"y\n").ok());         // stray quote
}

TEST(ImportTest, SingleTableBipartite) {
  ASSERT_OK_AND_ASSIGN(
      graph::DataGraph g,
      ImportTables({{"emp", "name,dept\nada,cs\ngrace,navy\n"}}));
  EXPECT_EQ(g.NumComplexObjects(), 2u);
  EXPECT_TRUE(g.IsBipartite());
  EXPECT_EQ(g.NumEdges(), 4u);
  EXPECT_EQ(g.Name(0), "emp#0");
  ASSERT_OK(g.Validate());
}

TEST(ImportTest, NullCellsMakeIrregularRows) {
  ImportOptions opt;
  opt.null_literal = "";
  ASSERT_OK_AND_ASSIGN(
      graph::DataGraph g,
      ImportTables({{"t", "a,b\n1,2\n3,\n"}}, opt));
  EXPECT_EQ(g.NumEdges(), 3u);  // second row has no b edge
}

TEST(ImportTest, AtomSharingToggle) {
  ImportOptions shared;
  ASSERT_OK_AND_ASSIGN(graph::DataGraph g1,
                       ImportTables({{"t", "a\nx\nx\nx\n"}}, shared));
  EXPECT_EQ(g1.NumAtomicObjects(), 1u);

  ImportOptions fresh;
  fresh.share_atoms = false;
  ASSERT_OK_AND_ASSIGN(graph::DataGraph g2,
                       ImportTables({{"t", "a\nx\nx\nx\n"}}, fresh));
  EXPECT_EQ(g2.NumAtomicObjects(), 3u);
}

TEST(ImportTest, ForeignKeysBecomeReferenceEdges) {
  ImportOptions opt;
  opt.foreign_keys = {{"emp", "dept_id", "dept", "id"}};
  ASSERT_OK_AND_ASSIGN(
      graph::DataGraph g,
      ImportTables({{"emp", "name,dept_id\nada,d1\ngrace,d2\nzed,d9\n"},
                    {"dept", "id,title\nd1,CS\nd2,Navy\n"}},
                   opt));
  EXPECT_FALSE(g.IsBipartite());
  graph::LabelId dept_id = g.labels().Find("dept_id");
  ASSERT_NE(dept_id, graph::kInvalidLabel);
  // ada -> dept#0, grace -> dept#1; zed's dangling d9 dropped.
  size_t ref_edges = 0;
  for (graph::ObjectId o = 0; o < g.NumObjects(); ++o) {
    for (const graph::HalfEdge& e : g.OutEdges(o)) {
      if (e.label == dept_id) {
        EXPECT_TRUE(g.IsComplex(e.other));
        ++ref_edges;
      }
    }
  }
  EXPECT_EQ(ref_edges, 2u);
}

TEST(ImportTest, ForeignKeyValidation) {
  ImportOptions opt;
  opt.foreign_keys = {{"emp", "dept_id", "nosuch", "id"}};
  EXPECT_FALSE(
      ImportTables({{"emp", "name,dept_id\nada,d1\n"}}, opt).ok());
  opt.foreign_keys = {{"emp", "nocol", "emp", "name"}};
  EXPECT_FALSE(
      ImportTables({{"emp", "name,dept_id\nada,d1\n"}}, opt).ok());
}

TEST(ImportTest, ParseErrorNamesTheTable) {
  auto r = ImportTables({{"good", "a\n1\n"}, {"bad", "a,b\n1\n"}});
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("bad"), std::string::npos);
}

TEST(ImportTest, PaperJustificationOneTypePerRelation) {
  // §2: "the previous typing would correctly classify the tuples ...
  // assuming that no two relations have the same set of attributes".
  ASSERT_OK_AND_ASSIGN(
      graph::DataGraph g,
      ImportTables({{"emp", "name,salary\nada,100\ngrace,120\nedsger,90\n"},
                    {"dept", "title,floor\nCS,1\nNavy,2\n"}}));
  ASSERT_OK_AND_ASSIGN(typing::PerfectTypingResult stage1,
                       typing::PerfectTypingViaGfp(g));
  EXPECT_EQ(stage1.program.NumTypes(), 2u);
  // ...and with identical attribute sets the tuples become
  // indistinguishable (the paper's caveat).
  ASSERT_OK_AND_ASSIGN(
      graph::DataGraph g2,
      ImportTables({{"r1", "a,b\n1,2\n"}, {"r2", "a,b\n3,4\n"}}));
  ASSERT_OK_AND_ASSIGN(typing::PerfectTypingResult s2,
                       typing::PerfectTypingViaGfp(g2));
  EXPECT_EQ(s2.program.NumTypes(), 1u);
}

}  // namespace
}  // namespace schemex::relational
