// Edge cases and option combinations not covered by the module tests.

#include <gtest/gtest.h>

#include <sstream>

#include "datalog/evaluator.h"
#include "datalog/parser.h"
#include "gen/spec.h"
#include "graph/graph_stats.h"
#include "tests/test_util.h"
#include "typing/assignment.h"
#include "typing/gfp.h"
#include "typing/typing_program.h"
#include "util/bitset.h"
#include "util/status.h"

namespace schemex {
namespace {

TEST(EvaluatorOptionsTest, SeedAllObjectsIncludesAtomics) {
  // With seed_complex_only = false, a rule demanding only incoming links
  // can be satisfied by an atomic object.
  graph::GraphBuilder b;
  ASSERT_OK(b.Atomic("leaf", "v"));
  ASSERT_OK(b.Edge("root", "has", "leaf"));
  util::Status st;
  graph::DataGraph g = std::move(b).Build(&st);
  ASSERT_OK(st);
  ASSERT_OK_AND_ASSIGN(
      datalog::Program p,
      datalog::ParseProgram("pointed(X) :- link(Y, X, has).", &g.labels()));

  ASSERT_OK_AND_ASSIGN(datalog::Interpretation def, datalog::Evaluate(p, g));
  EXPECT_EQ(def.extents[0].Count(), 0u);  // leaf excluded by default

  datalog::EvalOptions all;
  all.seed_complex_only = false;
  ASSERT_OK_AND_ASSIGN(datalog::Interpretation wide,
                       datalog::Evaluate(p, g, all));
  EXPECT_EQ(wide.extents[0].Count(), 1u);
}

TEST(EvaluatorOptionsTest, InvalidProgramRejected) {
  graph::DataGraph g = test::MakeFigure2Database();
  datalog::Program p;
  datalog::PredId t = p.AddPred("t");
  p.rules.push_back(datalog::Rule{t, 1, {datalog::Atom::Idb(99, 0)}});
  EXPECT_FALSE(datalog::Evaluate(p, g).ok());
}

TEST(BitsetEdgeTest, ZeroSizeAndExactWordBoundaries) {
  util::DenseBitset empty(0);
  EXPECT_EQ(empty.Count(), 0u);
  EXPECT_TRUE(empty.None());
  empty.SetAll();  // must not crash or set phantom bits
  EXPECT_EQ(empty.Count(), 0u);

  util::DenseBitset exact(64);
  exact.SetAll();
  EXPECT_EQ(exact.Count(), 64u);
  exact.Clear(63);
  EXPECT_EQ(exact.Count(), 63u);

  util::DenseBitset resized;
  resized.Resize(65, true);
  EXPECT_EQ(resized.Count(), 65u);
}

TEST(BitsetEdgeTest, ForEachOrderAndEquality) {
  util::DenseBitset a(130), b(130);
  for (size_t i : {0u, 63u, 64u, 127u, 129u}) {
    a.Set(i);
    b.Set(i);
  }
  EXPECT_EQ(a, b);
  b.Clear(64);
  EXPECT_FALSE(a == b);
}

TEST(AssignmentEdgeTest, ResizeKeepsExisting) {
  typing::TypeAssignment tau(2);
  tau.Assign(1, 5);
  tau.Resize(4);
  EXPECT_TRUE(tau.Has(1, 5));
  EXPECT_TRUE(tau.TypesOf(3).empty());
  tau.Resize(1);
  EXPECT_EQ(tau.NumObjects(), 1u);
}

TEST(GfpEdgeTest, EmptyProgramAndEmptyGraph) {
  graph::DataGraph g;
  typing::TypingProgram p;
  ASSERT_OK_AND_ASSIGN(typing::Extents m, typing::ComputeGfp(p, g));
  EXPECT_TRUE(m.per_type.empty());

  g.AddComplex("x");
  typing::TypingProgram p2;
  p2.AddType("t", {});
  ASSERT_OK_AND_ASSIGN(typing::Extents m2, typing::ComputeGfp(p2, g));
  EXPECT_EQ(m2.per_type[0].Count(), 1u);  // empty body matches everything
}

TEST(GfpEdgeTest, SelfReferentialType) {
  // t = {->next^t}: on a cycle everyone stays; on a chain everyone
  // drains (the last object has no next in t).
  graph::GraphBuilder cyc;
  ASSERT_OK(cyc.Edge("a", "next", "b"));
  ASSERT_OK(cyc.Edge("b", "next", "a"));
  util::Status st;
  graph::DataGraph gc = std::move(cyc).Build(&st);
  ASSERT_OK(st);
  typing::TypingProgram p;
  typing::TypeId t = p.AddType("t", {});
  p.type(t).signature = typing::TypeSignature::FromLinks(
      {typing::TypedLink::Out(gc.labels().Find("next"), t)});
  ASSERT_OK_AND_ASSIGN(typing::Extents mc, typing::ComputeGfp(p, gc));
  EXPECT_EQ(mc.per_type[0].Count(), 2u);

  graph::GraphBuilder chain;
  ASSERT_OK(chain.Edge("a", "next", "b"));
  ASSERT_OK(chain.Edge("b", "next", "c"));
  graph::DataGraph gl = std::move(chain).Build(&st);
  ASSERT_OK(st);
  typing::TypingProgram p2;
  typing::TypeId t2 = p2.AddType("t", {});
  p2.type(t2).signature = typing::TypeSignature::FromLinks(
      {typing::TypedLink::Out(gl.labels().Find("next"), t2)});
  ASSERT_OK_AND_ASSIGN(typing::Extents ml, typing::ComputeGfp(p2, gl));
  EXPECT_EQ(ml.per_type[0].Count(), 0u);
}

TEST(GraphStatsTest, EmptyGraph) {
  graph::DataGraph g;
  graph::GraphStats s = graph::ComputeStats(g);
  EXPECT_EQ(s.num_objects, 0u);
  EXPECT_TRUE(s.bipartite);  // vacuously
  EXPECT_EQ(s.avg_out_degree, 0.0);
  EXPECT_FALSE(s.ToString(g).empty());
}

TEST(StatusStreamTest, OperatorOutput) {
  std::ostringstream os;
  os << util::Status::NotFound("gone");
  EXPECT_EQ(os.str(), "NotFound: gone");
}

TEST(GenerateEdgeTest, SelfLoopAvoidanceWithSingleTarget) {
  // A type whose links target itself with count 1: the only candidate
  // target is the object itself; generation must not spin forever and
  // may produce a self loop (allowed by the model).
  gen::DatasetSpec spec;
  spec.types.push_back(gen::TypeSpec{"solo", 1, {{"self", 0, 1.0}}});
  ASSERT_OK_AND_ASSIGN(graph::DataGraph g, gen::Generate(spec, 1));
  ASSERT_OK(g.Validate());
  EXPECT_LE(g.NumEdges(), 1u);
}

TEST(TypingProgramEdgeTest, EmptySignatureCountsNoLinks) {
  typing::TypingProgram p;
  p.AddType("empty", {});
  EXPECT_EQ(p.TotalTypedLinks(), 0u);
  EXPECT_EQ(p.NumDistinctTypedLinks(), 0u);
  ASSERT_OK(p.Validate());
  datalog::Program d = p.ToDatalog();
  EXPECT_TRUE(d.rules[0].body.empty());
  ASSERT_OK_AND_ASSIGN(typing::TypingProgram back,
                       typing::TypingProgram::FromDatalog(d));
  EXPECT_TRUE(back.type(0).signature.empty());
}

}  // namespace
}  // namespace schemex
