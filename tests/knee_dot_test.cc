#include <gtest/gtest.h>

#include "extract/knee.h"
#include "gen/dbg.h"
#include "tests/test_util.h"
#include "typing/dot_export.h"

namespace schemex {
namespace {

using extract::FindKnee;
using extract::Knee;
using extract::KneeOptions;
using extract::NaturalTypeCounts;
using extract::SensitivityPoint;

std::vector<SensitivityPoint> MakeCurve() {
  // Synthetic Figure-6-like curve: shallow ramp, plateau near k=6-9,
  // explosion below.
  std::vector<SensitivityPoint> pts;
  auto add = [&](size_t k, size_t defect) {
    pts.push_back(SensitivityPoint{k, 0.0, 0, defect, defect});
  };
  add(30, 20);
  add(25, 25);
  add(20, 35);
  add(15, 45);
  add(10, 52);
  add(9, 50);
  add(8, 49);
  add(7, 51);
  add(6, 55);
  add(5, 90);
  add(3, 200);
  add(1, 500);
  return pts;
}

TEST(KneeTest, PicksSmallestKWithinTolerance) {
  // Points with k <= 20 (the default cap): {20:35, 15:45, 10:52, 9:50,
  // 8:49, 7:51, 6:55, 5:90, 3:200, 1:500}. Best defect = 35, cap =
  // 35 * 1.25 = 43.75 -> only k=20 qualifies.
  Knee knee = FindKnee(MakeCurve());
  EXPECT_EQ(knee.best_defect_in_range, 35u);
  EXPECT_EQ(knee.k, 20u);

  // Loosen the tolerance: cap 35*1.6 = 56 admits k in {20,15,10,9,8,7,6};
  // smallest wins.
  KneeOptions loose;
  loose.tolerance = 1.6;
  Knee knee2 = FindKnee(MakeCurve(), loose);
  EXPECT_EQ(knee2.k, 6u);
  EXPECT_EQ(knee2.defect, 55u);
}

TEST(KneeTest, RangeCapChangesAnchor) {
  KneeOptions opt;
  opt.max_types = 9;  // best in range = 49 at k=8; cap 61.25
  Knee knee = FindKnee(MakeCurve(), opt);
  EXPECT_EQ(knee.best_defect_in_range, 49u);
  EXPECT_EQ(knee.k, 6u);  // 55 <= 61.25, smallest qualifying
}

TEST(KneeTest, NaturalCountsAscending) {
  KneeOptions opt;
  opt.tolerance = 1.6;
  std::vector<size_t> ks = NaturalTypeCounts(MakeCurve(), opt);
  EXPECT_EQ(ks, (std::vector<size_t>{6, 7, 8, 9, 10, 15, 20}));
}

TEST(KneeTest, EmptyAndOutOfRangeInputs) {
  EXPECT_EQ(FindKnee({}).k, 0u);
  KneeOptions opt;
  opt.max_types = 2;  // no point has k <= 2 except 1
  Knee knee = FindKnee(MakeCurve(), opt);
  EXPECT_EQ(knee.k, 1u);
  EXPECT_EQ(knee.best_defect_in_range, 500u);
}

TEST(KneeTest, NoCapUsesWholeCurve) {
  KneeOptions opt;
  opt.max_types = 0;
  Knee knee = FindKnee(MakeCurve(), opt);
  EXPECT_EQ(knee.best_defect_in_range, 20u);
  // Cap = 25: both k=30 (20) and k=25 (25) qualify; smallest wins.
  EXPECT_EQ(knee.k, 25u);
}

TEST(DotExportTest, RendersTypesAndEdges) {
  graph::LabelInterner labels;
  graph::LabelId name = labels.Intern("name");
  graph::LabelId author = labels.Intern("author");
  typing::TypingProgram p;
  typing::TypeId person = p.AddType("person", {});
  typing::TypeId pub = p.AddType("publication", {});
  p.type(person).signature = typing::TypeSignature::FromLinks(
      {typing::TypedLink::OutAtomic(name),
       typing::TypedLink::In(author, pub)});
  p.type(pub).signature = typing::TypeSignature::FromLinks(
      {typing::TypedLink::Out(author, person)});

  std::string dot = typing::ProgramToDot(p, labels);
  EXPECT_NE(dot.find("digraph schema"), std::string::npos);
  EXPECT_NE(dot.find("person"), std::string::npos);
  // Atomic attribute inlined into the record label.
  EXPECT_NE(dot.find("|name"), std::string::npos);
  // publication -> person outgoing author edge.
  EXPECT_NE(dot.find("t1 -> t0 [label=\"author\"]"), std::string::npos);
  // person's declared-incoming author edge drawn dashed from publication.
  EXPECT_NE(dot.find("t1 -> t0 [label=\"author\", style=dashed]"),
            std::string::npos);
  // Balanced braces (cheap well-formedness check).
  EXPECT_EQ(std::count(dot.begin(), dot.end(), '{'),
            std::count(dot.begin(), dot.end(), '}'));
}

TEST(DotExportTest, WeightsAndAtomNode) {
  graph::LabelInterner labels;
  graph::LabelId v = labels.Intern("v");
  typing::TypingProgram p;
  p.AddType("t", typing::TypeSignature::FromLinks(
                     {typing::TypedLink::OutAtomic(v)}));
  typing::DotOptions opt;
  opt.weights = {42};
  opt.inline_atomic_links = false;
  std::string dot = typing::ProgramToDot(p, labels, opt);
  EXPECT_NE(dot.find("(42)"), std::string::npos);
  EXPECT_NE(dot.find("t0 -> atom [label=\"v\"]"), std::string::npos);
  EXPECT_NE(dot.find("atom [label=\"ATOM\""), std::string::npos);
}

TEST(DotExportTest, EscapesSpecialCharacters) {
  graph::LabelInterner labels;
  graph::LabelId weird = labels.Intern("a|b");
  typing::TypingProgram p;
  p.AddType("t<1>", typing::TypeSignature::FromLinks(
                        {typing::TypedLink::OutAtomic(weird)}));
  std::string dot = typing::ProgramToDot(p, labels);
  EXPECT_NE(dot.find("a\\|b"), std::string::npos);
  EXPECT_NE(dot.find("t\\<1\\>"), std::string::npos);
}

TEST(DotExportTest, DbgSchemaRenders) {
  auto g = gen::MakeDbgDataset();
  extract::ExtractorOptions opt;
  opt.target_num_types = 6;
  auto r = extract::SchemaExtractor(opt).Run(*g);
  ASSERT_TRUE(r.ok());
  typing::DotOptions dopt;
  dopt.weights.assign(r->clustering.final_weights.begin(),
                      r->clustering.final_weights.end());
  std::string dot = typing::ProgramToDot(r->final_program, g->labels(), dopt);
  EXPECT_GT(std::count(dot.begin(), dot.end(), '\n'), 10);
  EXPECT_NE(dot.find("author"), std::string::npos);
}

}  // namespace
}  // namespace schemex
