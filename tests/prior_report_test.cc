#include <gtest/gtest.h>

#include "catalog/report.h"
#include "extract/prior.h"
#include "gen/dbg.h"
#include "tests/test_util.h"
#include "typing/program_io.h"

namespace schemex {
namespace {

TEST(PriorExtractionTest, PriorTypesStayAuthoritative) {
  // Prior: the publication shape (author + name). Extraction fills in
  // types for everything else; publication-shaped objects stay claimed.
  auto g = gen::MakeDbgDataset(3);
  graph::LabelId name = g->labels().Find("name");
  graph::LabelId conference = g->labels().Find("conference");
  ASSERT_NE(conference, graph::kInvalidLabel);
  typing::TypingProgram prior;
  typing::TypeId pub = prior.AddType(
      "known_publication",
      typing::TypeSignature::FromLinks(
          {typing::TypedLink::OutAtomic(name),
           typing::TypedLink::OutAtomic(conference)}));

  extract::ExtractorOptions opt;
  opt.target_num_types = 5;
  ASSERT_OK_AND_ASSIGN(extract::PriorExtractionResult r,
                       extract::ExtractWithPrior(*g, prior, opt));
  EXPECT_EQ(r.num_prior_types, 1u);
  EXPECT_GT(r.num_prior_claimed, 0u);
  EXPECT_EQ(r.num_new_types, 5u);
  EXPECT_EQ(r.program.NumTypes(), 6u);
  // Prior type id 0 preserved, name intact.
  EXPECT_EQ(r.program.type(pub).name, "known_publication");
  // Every prior-claimed object keeps the prior type in the final recast
  // (the fallback may add a few misfits on top, hence >=).
  size_t claimed_assigned = 0;
  for (graph::ObjectId o = 0; o < g->NumObjects(); ++o) {
    if (r.recast.assignment.Has(o, pub)) ++claimed_assigned;
  }
  EXPECT_GE(claimed_assigned, r.num_prior_claimed);
  // Everything complex ends up typed.
  EXPECT_EQ(r.recast.num_untyped, 0u);
}

TEST(PriorExtractionTest, EmptyPriorEqualsPlainExtraction) {
  auto g = gen::MakeDbgDataset(3);
  typing::TypingProgram empty;
  extract::ExtractorOptions opt;
  opt.target_num_types = 6;
  ASSERT_OK_AND_ASSIGN(extract::PriorExtractionResult r,
                       extract::ExtractWithPrior(*g, empty, opt));
  EXPECT_EQ(r.num_prior_claimed, 0u);
  EXPECT_EQ(r.program.NumTypes(), 6u);
  auto plain = extract::SchemaExtractor(opt).Run(*g);
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(r.defect.defect(), plain->defect.defect());
}

TEST(PriorExtractionTest, PriorCoveringEverythingYieldsNoNewTypes) {
  graph::DataGraph g = test::MakeFigure2Database();
  // A prior matching every complex object (requires only a name).
  typing::TypingProgram prior;
  prior.AddType("anything_named",
                typing::TypeSignature::FromLinks({typing::TypedLink::OutAtomic(
                    g.labels().Find("name"))}));
  extract::ExtractorOptions opt;
  ASSERT_OK_AND_ASSIGN(extract::PriorExtractionResult r,
                       extract::ExtractWithPrior(g, prior, opt));
  EXPECT_EQ(r.num_prior_claimed, g.NumComplexObjects());
  EXPECT_EQ(r.num_new_types, 0u);
  EXPECT_EQ(r.program.NumTypes(), 1u);
}

TEST(ReportTest, RendersAllSections) {
  auto g = gen::MakeDbgDataset(3);
  extract::ExtractorOptions opt;
  opt.target_num_types = 6;
  auto r = extract::SchemaExtractor(opt).Run(*g);
  ASSERT_TRUE(r.ok());
  catalog::Workspace ws;
  ws.SetGraph(*g);
  ws.program = r->final_program;
  ws.assignment = r->recast.assignment;

  catalog::ReportOptions ropt;
  ropt.include_dot = true;
  ropt.max_examples_per_type = 2;
  std::string report = catalog::RenderReport(ws, ropt);
  EXPECT_NE(report.find("# Schema extraction report"), std::string::npos);
  EXPECT_NE(report.find("## Database"), std::string::npos);
  EXPECT_NE(report.find("## Schema"), std::string::npos);
  EXPECT_NE(report.find("## Types"), std::string::npos);
  EXPECT_NE(report.find("## Fit"), std::string::npos);
  EXPECT_NE(report.find("```dot"), std::string::npos);
  EXPECT_NE(report.find("defect:"), std::string::npos);
  // Examples limited to 2 per type: no type line lists 3 names.
  EXPECT_EQ(report.find(", _o"), std::string::npos);
}

TEST(ReportTest, GraphOnlyWorkspace) {
  catalog::Workspace ws;
  ws.SetGraph(test::MakeFigure2Database());
  ws.assignment = typing::TypeAssignment(ws.graph->NumObjects());
  std::string report = catalog::RenderReport(ws);
  EXPECT_NE(report.find("(no schema extracted yet)"), std::string::npos);
}

}  // namespace
}  // namespace schemex
