// Determinism regression suite: the pipeline must be *bit-identical*
// across repeated runs and across parallelism settings (ExtractorOptions
// documents parallelism as "only trades wall-clock for cores"). Pins
//  * the extract response JSON (minus wall-clock "timings"),
//  * the saved workspace artifacts — schema.dl text, snapshot.bin
//    bytes, graph.sxg, assignment.tsv — byte for byte,
//  * WriteTypingProgram and snapshot::Write outputs across independent
//    extractions and freezes (the graph's process-unique id() must not
//    leak into serialized bytes).
// A failure here means something ordered by address, hash-bucket walk,
// or thread arrival slipped back in; see docs/static-analysis.md.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "catalog/workspace.h"
#include "extract/extractor.h"
#include "gen/dbg.h"
#include "graph/frozen_graph.h"
#include "service/server.h"
#include "snapshot/snapshot.h"
#include "tests/test_util.h"
#include "typing/program_io.h"

namespace schemex {
namespace {

namespace fs = std::filesystem;

/// Removes the "timings" object (wall-clock stage durations, the one
/// legitimately run-varying part) from an extract response line.
std::string StripTimings(std::string line) {
  const std::string key = "\"timings\":";
  size_t pos = line.find(key);
  if (pos == std::string::npos) return line;
  size_t open = line.find('{', pos);
  EXPECT_NE(open, std::string::npos) << line;
  size_t depth = 0, end = open;
  for (; end < line.size(); ++end) {
    if (line[end] == '{') ++depth;
    if (line[end] == '}' && --depth == 0) break;
  }
  EXPECT_LT(end, line.size()) << line;
  // Erase the member plus whichever side's comma kept the JSON valid.
  size_t begin = pos;
  if (begin > 0 && line[begin - 1] == ',') {
    --begin;
  } else if (end + 1 < line.size() && line[end + 1] == ',') {
    ++end;
  }
  line.erase(begin, end + 1 - begin);
  return line;
}

/// Every regular file under `dir`, as relative-path -> raw bytes.
std::map<std::string, std::string> ReadDirBytes(const fs::path& dir) {
  std::map<std::string, std::string> out;
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    std::ifstream in(entry.path(), std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    out[fs::relative(entry.path(), dir).string()] = std::move(bytes);
  }
  return out;
}

catalog::Workspace MakeDbgWorkspace(uint64_t seed = 3) {
  auto g = gen::MakeDbgDataset(seed);
  EXPECT_TRUE(g.ok());
  extract::ExtractorOptions opt;
  opt.target_num_types = 6;
  auto r = extract::SchemaExtractor(opt).Run(*g);
  EXPECT_TRUE(r.ok());
  catalog::Workspace ws;
  ws.SetGraph(*g);
  ws.program = r->final_program;
  ws.assignment = r->recast.assignment;
  return ws;
}

class DeterminismTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("schemex_determinism_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
};

/// One cold server: load the saved workspace, re-extract at the given
/// parallelism, persist to save_dir. Returns the timing-stripped
/// response line.
std::string RunServerExtract(const fs::path& load_dir,
                             const fs::path& save_dir,
                             uint64_t parallelism) {
  service::Server server;
  std::string load = server.HandleJsonLine(
      "{\"id\":1,\"verb\":\"load_workspace\",\"params\":{\"name\":\"dbg\","
      "\"dir\":\"" + load_dir.string() + "\"}}");
  EXPECT_NE(load.find("\"ok\":true"), std::string::npos) << load;
  std::string resp = server.HandleJsonLine(
      "{\"id\":2,\"verb\":\"extract\",\"params\":{\"workspace\":\"dbg\","
      "\"k\":6,\"parallelism\":" + std::to_string(parallelism) +
      ",\"save_dir\":\"" + save_dir.string() + "\"}}");
  EXPECT_NE(resp.find("\"ok\":true"), std::string::npos) << resp;
  return StripTimings(resp);
}

TEST_F(DeterminismTest, ExtractResponseAndArtifactsAcrossRunsAndThreads) {
  catalog::Workspace ws = MakeDbgWorkspace();
  ASSERT_OK(catalog::SaveWorkspace(ws, (dir_ / "seed").string()));

  // Two repeats at each parallelism: run-to-run AND thread-count drift
  // both land in the same comparison.
  const uint64_t kParallelism[] = {1, 1, 4, 4};
  std::vector<std::string> responses;
  std::vector<std::map<std::string, std::string>> artifacts;
  for (size_t i = 0; i < 4; ++i) {
    fs::path out = dir_ / ("out" + std::to_string(i));
    std::string resp = RunServerExtract(dir_ / "seed", out,
                                        kParallelism[i]);
    // The per-run save_dir is echoed back as "saved_to"; neutralize it
    // so the comparison sees only pipeline output.
    size_t at = resp.find(out.string());
    ASSERT_NE(at, std::string::npos) << resp;
    resp.replace(at, out.string().size(), "<save_dir>");
    responses.push_back(std::move(resp));
    artifacts.push_back(ReadDirBytes(out));
  }

  ASSERT_NE(responses[0].find("\"num_final_types\""), std::string::npos)
      << responses[0];
  EXPECT_EQ(responses[0].find("timings"), std::string::npos)
      << "StripTimings left timings behind: " << responses[0];
  for (size_t i = 1; i < 4; ++i) {
    EXPECT_EQ(responses[0], responses[i])
        << "extract response drifted (run 0 vs run " << i << ", p="
        << kParallelism[i] << ")";
  }

  // schema.dl / snapshot.bin / graph.sxg / assignment.tsv, byte-equal.
  ASSERT_EQ(artifacts[0].count("schema.dl"), 1u);
  ASSERT_EQ(artifacts[0].count("snapshot.bin"), 1u);
  for (size_t i = 1; i < 4; ++i) {
    ASSERT_EQ(artifacts[0].size(), artifacts[i].size());
    for (const auto& [name, bytes] : artifacts[0]) {
      ASSERT_EQ(artifacts[i].count(name), 1u) << name;
      EXPECT_EQ(bytes, artifacts[i].at(name))
          << name << " drifted (run 0 vs run " << i << ", p="
          << kParallelism[i] << ")";
    }
  }
}

TEST_F(DeterminismTest, IncrementalReExtractMatchesColdExtraction) {
  // The incremental service path — extract (installs the cache), then
  // apply_delta, then re_extract — must save artifacts byte-identical
  // to a cold extraction of an equivalently mutated graph, at every
  // parallelism and in both overlay and compacted forms.
  catalog::Workspace seed_ws = MakeDbgWorkspace();
  ASSERT_OK(catalog::SaveWorkspace(seed_ws, (dir_ / "seed").string()));

  // Reference model: the same base graph mutated by the same ops through
  // DataGraph (the op sequence fixes the label-intern order on both
  // sides), then extracted cold through the same server verb.
  auto base = gen::MakeDbgDataset(3);
  ASSERT_TRUE(base.ok());
  graph::DataGraph ref = *base;
  std::vector<graph::ObjectId> cs;
  for (graph::ObjectId o = 0;
       o < ref.NumObjects() && cs.size() < 2; ++o) {
    if (ref.IsComplex(o)) cs.push_back(o);
  }
  ASSERT_EQ(cs.size(), 2u);
  const graph::ObjectId c1 = cs[0], c2 = cs[1];
  const graph::ObjectId n0 = static_cast<graph::ObjectId>(ref.NumObjects());
  ASSERT_FALSE(ref.OutEdges(c1).empty());
  const graph::HalfEdge del = ref.OutEdges(c1).front();
  const std::string del_label = ref.labels().Name(del.label);

  auto id = [](graph::ObjectId o) { return std::to_string(o); };
  const std::string ops =
      "[{\"op\":\"add_object\",\"kind\":\"complex\",\"name\":\"newc\"},"
      "{\"op\":\"add_object\",\"kind\":\"atomic\",\"value\":\"newv\"},"
      "{\"op\":\"add_link\",\"from\":" + id(c1) + ",\"to\":" + id(n0) +
      ",\"label\":\"delta_ref\"},"
      "{\"op\":\"add_link\",\"from\":" + id(n0) + ",\"to\":" + id(n0 + 1) +
      ",\"label\":\"delta_attr\"},"
      "{\"op\":\"add_link\",\"from\":" + id(n0) + ",\"to\":" + id(c2) +
      ",\"label\":\"delta_ref\"},"
      "{\"op\":\"del_link\",\"from\":" + id(c1) + ",\"to\":" + id(del.other) +
      ",\"label\":\"" + del_label + "\"}]";

  ASSERT_EQ(ref.AddComplex("newc"), n0);
  ASSERT_EQ(ref.AddAtomic("newv"), n0 + 1);
  ASSERT_OK(ref.AddEdge(c1, n0, "delta_ref"));
  ASSERT_OK(ref.AddEdge(n0, n0 + 1, "delta_attr"));
  ASSERT_OK(ref.AddEdge(n0, c2, "delta_ref"));
  ASSERT_OK(ref.RemoveEdge(c1, del.other, del.label));

  catalog::Workspace ref_ws;
  ref_ws.SetGraph(ref);
  ASSERT_OK(catalog::SaveWorkspace(ref_ws, (dir_ / "refseed").string()));
  RunServerExtract(dir_ / "refseed", dir_ / "refout", 1);
  auto cold_artifacts = ReadDirBytes(dir_ / "refout");
  ASSERT_EQ(cold_artifacts.count("schema.dl"), 1u);
  ASSERT_EQ(cold_artifacts.count("snapshot.bin"), 1u);
  ASSERT_EQ(cold_artifacts.count("graph.sxg"), 1u);
  ASSERT_EQ(cold_artifacts.count("assignment.tsv"), 1u);

  std::vector<std::string> responses;
  int run = 0;
  for (uint64_t parallelism : {1, 4}) {
    for (bool compact : {false, true}) {
      fs::path out = dir_ / ("inc" + std::to_string(run++));
      service::Server server;
      std::string load = server.HandleJsonLine(
          "{\"id\":1,\"verb\":\"load_workspace\",\"params\":{\"name\":"
          "\"dbg\",\"dir\":\"" + (dir_ / "seed").string() + "\"}}");
      ASSERT_NE(load.find("\"ok\":true"), std::string::npos) << load;
      std::string ex = server.HandleJsonLine(
          "{\"id\":2,\"verb\":\"extract\",\"params\":{\"workspace\":\"dbg\","
          "\"k\":6,\"parallelism\":" + std::to_string(parallelism) + "}}");
      ASSERT_NE(ex.find("\"ok\":true"), std::string::npos) << ex;
      std::string ad = server.HandleJsonLine(
          "{\"id\":3,\"verb\":\"apply_delta\",\"params\":{\"workspace\":"
          "\"dbg\",\"compact\":" + std::string(compact ? "true" : "false") +
          ",\"ops\":" + ops + "}}");
      ASSERT_NE(ad.find("\"ok\":true"), std::string::npos) << ad;
      std::string rx = server.HandleJsonLine(
          "{\"id\":4,\"verb\":\"re_extract\",\"params\":{\"workspace\":"
          "\"dbg\",\"parallelism\":" + std::to_string(parallelism) +
          ",\"save_dir\":\"" + out.string() + "\"}}");
      ASSERT_NE(rx.find("\"ok\":true"), std::string::npos) << rx;

      rx = StripTimings(rx);
      size_t at = rx.find(out.string());
      ASSERT_NE(at, std::string::npos) << rx;
      rx.replace(at, out.string().size(), "<save_dir>");
      responses.push_back(std::move(rx));

      auto artifacts = ReadDirBytes(out);
      ASSERT_EQ(artifacts.size(), cold_artifacts.size());
      for (const auto& [name, bytes] : cold_artifacts) {
        ASSERT_EQ(artifacts.count(name), 1u) << name;
        EXPECT_EQ(bytes, artifacts.at(name))
            << name << " drifted from the cold extraction (p="
            << parallelism << ", compact=" << compact << ")";
      }
    }
  }
  // The re_extract responses (timings stripped) must agree with each
  // other across parallelism and overlay-vs-compacted forms: same k,
  // types, defect, recast counts, and incremental stats.
  ASSERT_NE(responses[0].find("\"incremental\""), std::string::npos)
      << responses[0];
  for (size_t i = 1; i < responses.size(); ++i) {
    EXPECT_EQ(responses[0], responses[i])
        << "re_extract response drifted (run 0 vs run " << i << ")";
  }
}

TEST_F(DeterminismTest, SchemaTextIdenticalAcrossIndependentExtractions) {
  // Independent dataset builds + extractions (sequential vs 4 workers)
  // must serialize to the same datalog text.
  std::vector<std::string> texts;
  for (size_t parallelism : {1, 4, 1, 4}) {
    auto g = gen::MakeDbgDataset(7);
    ASSERT_TRUE(g.ok());
    extract::ExtractorOptions opt;
    opt.target_num_types = 5;
    opt.parallelism = parallelism;
    auto r = extract::SchemaExtractor(opt).Run(*g);
    ASSERT_TRUE(r.ok());
    texts.push_back(
        typing::WriteTypingProgram(r->final_program, g->labels()));
  }
  for (size_t i = 1; i < texts.size(); ++i) {
    EXPECT_EQ(texts[0], texts[i]) << "schema.dl text drifted (run " << i
                                  << ")";
  }
}

TEST_F(DeterminismTest, SnapshotBytesIdenticalAcrossIndependentFreezes) {
  // Two separately generated + frozen graphs of the same seed must write
  // identical snapshots in both encodings. Also proves the freeze-time
  // process-unique graph id() stays out of the file.
  for (bool compact : {false, true}) {
    std::vector<std::string> files;
    for (int run = 0; run < 2; ++run) {
      auto g = gen::MakeDbgDataset(11);
      ASSERT_TRUE(g.ok());
      auto frozen = graph::Freeze(*g);
      fs::path p = dir_ / ("snap" + std::to_string(run) +
                           (compact ? "c" : "r") + ".bin");
      snapshot::WriteOptions wo;
      wo.compact = compact;
      ASSERT_OK(snapshot::Write(*frozen, p.string(), wo));
      std::ifstream in(p, std::ios::binary);
      files.emplace_back((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
      ASSERT_FALSE(files.back().empty());
    }
    EXPECT_EQ(files[0], files[1])
        << "snapshot bytes drifted (compact=" << compact << ")";
  }
}

}  // namespace
}  // namespace schemex
