#include "service/framer.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/status.h"

namespace schemex::service {
namespace {

/// Drains every currently-available line; errors come back as "<ERR:...>"
/// markers so tests can assert order and kind in one vector.
std::vector<std::string> Drain(Framer& framer) {
  std::vector<std::string> out;
  util::StatusOr<std::string> line = std::string();
  while (framer.Next(&line)) {
    if (line.ok()) {
      out.push_back(*line);
    } else {
      EXPECT_EQ(line.status().code(), util::StatusCode::kInvalidArgument)
          << line.status();
      out.push_back("<ERR>");
    }
  }
  return out;
}

TEST(FramerTest, SingleAndMultipleLines) {
  Framer f;
  f.Feed("{\"a\":1}\n");
  EXPECT_EQ(Drain(f), std::vector<std::string>{"{\"a\":1}"});
  f.Feed("one\ntwo\nthree\n");
  EXPECT_EQ(Drain(f), (std::vector<std::string>{"one", "two", "three"}));
  EXPECT_EQ(f.lines_framed(), 4u);
}

TEST(FramerTest, LineSplitAcrossFeeds) {
  Framer f;
  f.Feed("{\"verb\":");
  EXPECT_TRUE(Drain(f).empty());
  f.Feed("\"stats\"");
  EXPECT_TRUE(Drain(f).empty());
  f.Feed("}\nrest");
  EXPECT_EQ(Drain(f), std::vector<std::string>{"{\"verb\":\"stats\"}"});
  EXPECT_EQ(f.buffered_bytes(), 4u);  // "rest" awaits its newline
}

TEST(FramerTest, BlankLinesAndCrlfAreFree) {
  Framer f;
  f.Feed("\n\n  \t \na\r\n\r\nb\n");
  EXPECT_EQ(Drain(f), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(f.lines_framed(), 2u);
}

TEST(FramerTest, FinalLineWithoutNewlineSurvivesEof) {
  // The bug class this framer exists to kill: a trailing request with no
  // '\n' before EOF must still be framed, not silently dropped.
  Framer f;
  f.Feed("first\nlast-without-newline");
  EXPECT_EQ(Drain(f), std::vector<std::string>{"first"});
  f.Finish();
  EXPECT_EQ(Drain(f), std::vector<std::string>{"last-without-newline"});
  EXPECT_TRUE(f.finished());
  // Finish with nothing buffered yields nothing.
  util::StatusOr<std::string> line = std::string();
  EXPECT_FALSE(f.Next(&line));
}

TEST(FramerTest, FeedAfterFinishIsIgnored) {
  Framer f;
  f.Finish();
  f.Feed("late\n");
  util::StatusOr<std::string> line = std::string();
  EXPECT_FALSE(f.Next(&line));
  EXPECT_EQ(f.buffered_bytes(), 0u);
}

TEST(FramerTest, EmbeddedNulIsRejectedNotTruncated) {
  Framer f;
  std::string evil = "{\"verb\":\"stats\"}";
  evil.insert(5, 1, '\0');
  f.Feed(evil + "\nok\n");
  // The NUL line is a structured error; the next line still frames.
  EXPECT_EQ(Drain(f), (std::vector<std::string>{"<ERR>", "ok"}));
}

TEST(FramerTest, EmbeddedNulInFinalEofLine) {
  Framer f;
  f.Feed(std::string("bad\0line", 8));
  f.Finish();
  util::StatusOr<std::string> line = std::string();
  ASSERT_TRUE(f.Next(&line));
  EXPECT_FALSE(line.ok());
  EXPECT_EQ(line.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(FramerTest, OversizedTerminatedLineRejectedThenResyncs) {
  FramerOptions opt;
  opt.max_line_bytes = 8;
  Framer f(opt);
  f.Feed("0123456789\nshort\n");
  EXPECT_EQ(Drain(f), (std::vector<std::string>{"<ERR>", "short"}));
}

TEST(FramerTest, OversizedStreamingLineRejectedOnceAndBounded) {
  // An unterminated fire-hose line is rejected as soon as it crosses the
  // limit (exactly one error), its tail is discarded without buffering,
  // and framing resumes at the next newline.
  FramerOptions opt;
  opt.max_line_bytes = 16;
  Framer f(opt);
  f.Feed(std::string(40, 'x'));
  util::StatusOr<std::string> line = std::string();
  ASSERT_TRUE(f.Next(&line));
  EXPECT_FALSE(line.ok());
  EXPECT_FALSE(f.Next(&line));
  // More of the same line: no second error, no growth.
  f.Feed(std::string(1000, 'y'));
  EXPECT_FALSE(f.Next(&line));
  EXPECT_EQ(f.buffered_bytes(), 0u);
  f.Feed("tail-of-oversized\nclean\n");
  EXPECT_EQ(Drain(f), std::vector<std::string>{"clean"});
}

TEST(FramerTest, UnlimitedLineSizeWhenZero) {
  FramerOptions opt;
  opt.max_line_bytes = 0;
  Framer f(opt);
  std::string big(1 << 20, 'z');
  f.Feed(big + "\n");
  EXPECT_EQ(Drain(f), std::vector<std::string>{big});
}

TEST(FramerTest, LongLivedConnectionCompactsItsBuffer) {
  // Many small lines through one framer: the consumed prefix must not
  // accumulate forever.
  Framer f;
  const std::string line = "{\"id\":1,\"verb\":\"stats\"}\n";
  size_t total = 0;
  for (int i = 0; i < 20000; ++i) {
    f.Feed(line);
    util::StatusOr<std::string> got = std::string();
    ASSERT_TRUE(f.Next(&got));
    ASSERT_TRUE(got.ok());
    total += got->size();
  }
  EXPECT_EQ(total, 20000u * (line.size() - 1));
  EXPECT_EQ(f.buffered_bytes(), 0u);
}

}  // namespace
}  // namespace schemex::service
