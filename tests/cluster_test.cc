#include <gtest/gtest.h>

#include <cmath>

#include "cluster/distance.h"
#include "cluster/greedy.h"
#include "tests/test_util.h"
#include "typing/typing_program.h"

namespace schemex::cluster {
namespace {

using typing::TypedLink;
using typing::TypeId;
using typing::TypeSignature;
using typing::TypingProgram;

TEST(DistanceTest, NamesAreStable) {
  EXPECT_EQ(PsiKindName(PsiKind::kSimpleD), "d");
  EXPECT_EQ(PsiKindName(PsiKind::kPsi2), "psi2");
  EXPECT_EQ(PsiKindName(PsiKind::kPsi5), "psi5");
}

TEST(DistanceTest, ClosedForms) {
  // L=10, w1=100, w2=10, d=2.
  EXPECT_DOUBLE_EQ(WeightedDistance(PsiKind::kSimpleD, 100, 10, 2, 10), 2.0);
  EXPECT_DOUBLE_EQ(WeightedDistance(PsiKind::kPsi1, 100, 10, 2, 10),
                   100.0 / 1000.0);
  EXPECT_DOUBLE_EQ(WeightedDistance(PsiKind::kPsi2, 100, 10, 2, 10), 20.0);
  EXPECT_DOUBLE_EQ(WeightedDistance(PsiKind::kPsi3, 100, 10, 2, 10),
                   std::sqrt(1000.0));
  EXPECT_DOUBLE_EQ(WeightedDistance(PsiKind::kPsi4, 100, 10, 2, 10), 1000.0);
  EXPECT_DOUBLE_EQ(WeightedDistance(PsiKind::kPsi5, 100, 10, 2, 10),
                   std::sqrt(0.1));
}

TEST(DistanceTest, ZeroDistanceIsFreeForAllKinds) {
  for (PsiKind k : {PsiKind::kSimpleD, PsiKind::kPsi1, PsiKind::kPsi2,
                    PsiKind::kPsi3, PsiKind::kPsi4, PsiKind::kPsi5}) {
    EXPECT_EQ(WeightedDistance(k, 5, 7, 0, 10), 0.0) << PsiKindName(k);
  }
}

TEST(DistanceTest, WeightsClampedToOne) {
  // Zero/negative weights must not blow up ratio forms.
  EXPECT_TRUE(std::isfinite(WeightedDistance(PsiKind::kPsi1, 0, 0, 3, 10)));
  EXPECT_TRUE(std::isfinite(WeightedDistance(PsiKind::kPsi5, 0, 5, 3, 10)));
}

/// §5.2 lists desired properties. psi2 = d*w2 satisfies "increasing in d"
/// and "increasing in w2" (it ignores w1); psi1 satisfies all three.
struct PsiPropertyCase {
  PsiKind kind;
  bool increasing_in_d;
  bool decreasing_in_w1;
  bool increasing_in_w2;
};

class PsiPropertyTest : public ::testing::TestWithParam<PsiPropertyCase> {};

TEST_P(PsiPropertyTest, MonotonicityAsDocumented) {
  const PsiPropertyCase& c = GetParam();
  const size_t L = 20;
  double base = WeightedDistance(c.kind, 50, 10, 3, L);
  if (c.increasing_in_d) {
    EXPECT_LT(base, WeightedDistance(c.kind, 50, 10, 5, L))
        << PsiKindName(c.kind);
  }
  if (c.decreasing_in_w1) {
    EXPECT_GT(base, WeightedDistance(c.kind, 500, 10, 3, L))
        << PsiKindName(c.kind);
  }
  if (c.increasing_in_w2) {
    EXPECT_LT(base, WeightedDistance(c.kind, 50, 100, 3, L))
        << PsiKindName(c.kind);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, PsiPropertyTest,
    ::testing::Values(
        // The paper (§5.2) concedes "some of them don't satisfy all three
        // properties": psi1 is decreasing in BOTH weights; psi3 is not
        // monotone in d once w1*w2 > 1.
        PsiPropertyCase{PsiKind::kSimpleD, true, false, false},
        PsiPropertyCase{PsiKind::kPsi1, true, true, false},
        PsiPropertyCase{PsiKind::kPsi2, true, false, true},
        PsiPropertyCase{PsiKind::kPsi3, false, false, true},
        PsiPropertyCase{PsiKind::kPsi4, true, false, true},
        PsiPropertyCase{PsiKind::kPsi5, true, true, true}),
    [](const ::testing::TestParamInfo<PsiPropertyCase>& info) {
      return std::string(PsiKindName(info.param.kind));
    });

/// The four types of Example 5.1:
///   t1 = ->a^0, ->b^3    t2 = ->a^0, ->b^4
///   t3 = ->a^0, ->b^1    t4 = ->a^0, ->b^2
class Example51 : public ::testing::Test {
 protected:
  void SetUp() override {
    a_ = labels_.Intern("a");
    b_ = labels_.Intern("b");
    p_.AddType("t1", TypeSignature::FromLinks(
                         {TypedLink::OutAtomic(a_), TypedLink::Out(b_, 2)}));
    p_.AddType("t2", TypeSignature::FromLinks(
                         {TypedLink::OutAtomic(a_), TypedLink::Out(b_, 3)}));
    p_.AddType("t3", TypeSignature::FromLinks(
                         {TypedLink::OutAtomic(a_), TypedLink::Out(b_, 0)}));
    p_.AddType("t4", TypeSignature::FromLinks(
                         {TypedLink::OutAtomic(a_), TypedLink::Out(b_, 1)}));
    ASSERT_OK(p_.Validate());
  }

  graph::LabelInterner labels_;
  graph::LabelId a_, b_;
  TypingProgram p_;
};

TEST_F(Example51, CoalescingProjectsTheHypercube) {
  // Initially all four types are distinct, but after one merge the
  // remaining pair becomes identical, so the second merge is free.
  ClusteringOptions opt;
  opt.psi = PsiKind::kSimpleD;
  opt.enable_empty_type = false;
  opt.target_num_types = 2;
  ASSERT_OK_AND_ASSIGN(ClusteringResult r,
                       ClusterTypes(p_, {10, 10, 10, 10}, opt));
  ASSERT_EQ(r.steps.size(), 2u);
  EXPECT_GT(r.steps[0].cost, 0.0);   // first merge pays a real distance
  EXPECT_EQ(r.steps[1].simple_d, 0u);  // second is the induced free merge
  EXPECT_EQ(r.steps[1].cost, 0.0);
  EXPECT_EQ(r.final_program.NumTypes(), 2u);
  ASSERT_OK(r.final_program.Validate());
}

TEST_F(Example51, WeightsAccumulateThroughMerges) {
  ClusteringOptions opt;
  opt.psi = PsiKind::kPsi2;
  opt.enable_empty_type = false;
  opt.target_num_types = 1;
  ASSERT_OK_AND_ASSIGN(ClusteringResult r,
                       ClusterTypes(p_, {1, 2, 3, 4}, opt));
  EXPECT_EQ(r.final_program.NumTypes(), 1u);
  ASSERT_EQ(r.final_weights.size(), 1u);
  EXPECT_EQ(r.final_weights[0], 10u);
  for (TypeId m : r.final_map) EXPECT_EQ(m, 0);
}

TEST_F(Example51, SnapshotsCoverEveryK) {
  ClusteringOptions opt;
  opt.enable_empty_type = false;
  opt.target_num_types = 1;
  opt.record_snapshots = true;
  ASSERT_OK_AND_ASSIGN(ClusteringResult r,
                       ClusterTypes(p_, {10, 10, 10, 10}, opt));
  ASSERT_EQ(r.snapshots.size(), 4u);  // k = 4, 3, 2, 1
  EXPECT_EQ(r.snapshots[0].num_types, 4u);
  EXPECT_EQ(r.snapshots[3].num_types, 1u);
  EXPECT_EQ(r.snapshots[0].total_distance, 0.0);
  EXPECT_GE(r.snapshots[3].total_distance, r.snapshots[1].total_distance);
  for (const Snapshot& s : r.snapshots) {
    ASSERT_OK(s.program.Validate());
    EXPECT_EQ(s.stage1_to_snapshot.size(), 4u);
  }
}

TEST(ClusterTest, Example53CutoffBehaviour) {
  // Example 5.3: with a huge type t1, a medium t2 at distance 1+k, and a
  // tiny t3 at distance k from t1, the best 2-type solution flips from
  // "merge t3 into t1" (small k) to "move t3 to the empty type" and
  // eventually "merge t2 into t1" as k grows.
  graph::LabelInterner labels;
  graph::LabelId a = labels.Intern("a");
  graph::LabelId b = labels.Intern("b");
  graph::LabelId c = labels.Intern("c");
  auto make_program = [&](size_t k) {
    TypingProgram p;
    p.AddType("t1", TypeSignature::FromLinks(
                        {TypedLink::OutAtomic(a), TypedLink::OutAtomic(b)}));
    p.AddType("t2",
              TypeSignature::FromLinks({TypedLink::OutAtomic(a),
                                        TypedLink::OutAtomic(b),
                                        TypedLink::OutAtomic(c)}));
    std::vector<TypedLink> far = {TypedLink::OutAtomic(a),
                                  TypedLink::OutAtomic(b)};
    for (size_t i = 0; i < k; ++i) {
      far.push_back(TypedLink::OutAtomic(
          labels.Intern("l" + std::to_string(i))));
    }
    p.AddType("t3", TypeSignature::FromLinks(std::move(far)));
    return p;
  };
  const std::vector<uint32_t> weights = {100000, 1000, 100};

  ClusteringOptions opt;
  opt.psi = PsiKind::kPsi2;
  opt.target_num_types = 2;

  // k = 1: t3 is close to t1; the cheap step merges t3 -> t1.
  {
    ASSERT_OK_AND_ASSIGN(ClusteringResult r,
                         ClusterTypes(make_program(1), weights, opt));
    ASSERT_EQ(r.steps.size(), 1u);
    EXPECT_EQ(r.steps[0].source, 2);
    EXPECT_EQ(r.steps[0].dest, 0);
  }
  // k = 30: t3 is extremely far from everything; moving its 100 objects
  // to the empty type beats dragging them across 30 dimensions, and
  // beats moving the 1000 t2 objects (psi2 scales with w2).
  {
    ASSERT_OK_AND_ASSIGN(ClusteringResult r,
                         ClusterTypes(make_program(30), weights, opt));
    ASSERT_EQ(r.steps.size(), 1u);
    // Either t3 -> empty (its |sig| = 32 distance) or t2 -> t1 (d = 1,
    // w2 = 1000): psi2 costs 3200 vs 1000 — so t2 merges into t1.
    EXPECT_EQ(r.steps[0].source, 1);
    EXPECT_EQ(r.steps[0].dest, 0);
  }
}

TEST(ClusterTest, EmptyTypeWinsForOutlierTypes) {
  // The paper's "choose not to type some objects" regime (Example 5.3):
  // a small type sharing NO links with the others is cheaper to leave
  // unclassified (d = |signature|) than to drag across the hypercube
  // (d = |signature| + |destination|) or to displace a bigger type.
  // Exactly where the cut-offs fall "depend[s] on the distance function
  // that is chosen" (§5.2) — this instance pins them for psi2.
  graph::LabelInterner labels;
  TypingProgram p;
  p.AddType("t1", TypeSignature::FromLinks(
                      {TypedLink::OutAtomic(labels.Intern("a")),
                       TypedLink::OutAtomic(labels.Intern("b"))}));
  p.AddType("t2", TypeSignature::FromLinks(
                      {TypedLink::OutAtomic(labels.Intern("a")),
                       TypedLink::OutAtomic(labels.Intern("b")),
                       TypedLink::OutAtomic(labels.Intern("c"))}));
  p.AddType("t3", TypeSignature::FromLinks(
                      {TypedLink::OutAtomic(labels.Intern("v")),
                       TypedLink::OutAtomic(labels.Intern("w"))}));
  // Costs (psi2): t3->t1 d=4 -> 400; t3->empty d=2 -> 200; t2->t1 -> 1000.
  ClusteringOptions opt;
  opt.psi = PsiKind::kPsi2;
  opt.target_num_types = 2;
  ASSERT_OK_AND_ASSIGN(ClusteringResult r,
                       ClusterTypes(p, {100000, 1000, 100}, opt));
  ASSERT_EQ(r.steps.size(), 1u);
  EXPECT_EQ(r.steps[0].source, 2);
  EXPECT_EQ(r.steps[0].dest, kEmptyType);
  EXPECT_EQ(r.final_map[2], kEmptyType);
  EXPECT_EQ(r.final_program.NumTypes(), 2u);
}

TEST(ClusterTest, EmptyTypeMoveDropsDanglingReferences) {
  // When a type is unclassified, links targeting it disappear from other
  // rule bodies.
  graph::LabelInterner labels;
  graph::LabelId a = labels.Intern("a");
  graph::LabelId r = labels.Intern("r");
  TypingProgram p;
  p.AddType("big", TypeSignature::FromLinks({TypedLink::OutAtomic(a)}));
  p.AddType("weird",
            TypeSignature::FromLinks(
                {TypedLink::OutAtomic(labels.Intern("x1")),
                 TypedLink::OutAtomic(labels.Intern("x2")),
                 TypedLink::OutAtomic(labels.Intern("x3"))}));
  p.AddType("ref", TypeSignature::FromLinks(
                       {TypedLink::OutAtomic(a), TypedLink::Out(r, 1)}));
  ClusteringOptions opt;
  opt.psi = PsiKind::kPsi2;
  opt.target_num_types = 2;
  ASSERT_OK_AND_ASSIGN(ClusteringResult res,
                       ClusterTypes(p, {1000, 1, 500}, opt));
  ASSERT_EQ(res.steps.size(), 1u);
  EXPECT_EQ(res.steps[0].dest, kEmptyType);
  EXPECT_EQ(res.steps[0].source, 1);
  // "ref" lost its ->r^weird link.
  TypeId ref_final = res.final_map[2];
  ASSERT_NE(ref_final, kEmptyType);
  EXPECT_EQ(res.final_program.type(ref_final).signature.size(), 1u);
  ASSERT_OK(res.final_program.Validate());
}

TEST(ClusterTest, InputValidation) {
  TypingProgram p;
  graph::LabelInterner labels;
  p.AddType("t", TypeSignature());
  ClusteringOptions opt;
  EXPECT_FALSE(ClusterTypes(p, {1, 2}, opt).ok());  // weight size mismatch
  opt.target_num_types = 0;
  EXPECT_FALSE(ClusterTypes(p, {1}, opt).ok());
}

TEST(ClusterTest, TargetAboveNIsANoOp) {
  graph::LabelInterner labels;
  TypingProgram p;
  p.AddType("t1", TypeSignature::FromLinks(
                      {TypedLink::OutAtomic(labels.Intern("a"))}));
  p.AddType("t2", TypeSignature::FromLinks(
                      {TypedLink::OutAtomic(labels.Intern("b"))}));
  ClusteringOptions opt;
  opt.target_num_types = 5;
  ASSERT_OK_AND_ASSIGN(ClusteringResult r, ClusterTypes(p, {1, 1}, opt));
  EXPECT_TRUE(r.steps.empty());
  EXPECT_EQ(r.final_program.NumTypes(), 2u);
  EXPECT_EQ(r.total_distance, 0.0);
}

/// A type can legitimately carry weight 0 — e.g. a roles-decomposed type
/// whose objects all live in other roles. Every psi kind must clamp
/// weights below at 1 (and the virtual empty type's starting weight of 0
/// likewise), with and without the empty type enabled.
class PsiZeroWeightTest : public ::testing::TestWithParam<PsiKind> {
 protected:
  TypingProgram MakeProgram() {
    TypingProgram p;
    p.AddType("w0", TypeSignature::FromLinks(
                        {TypedLink::OutAtomic(labels_.Intern("x1")),
                         TypedLink::OutAtomic(labels_.Intern("x2"))}));
    p.AddType("t1", TypeSignature::FromLinks(
                        {TypedLink::OutAtomic(labels_.Intern("a"))}));
    p.AddType("t2", TypeSignature::FromLinks(
                        {TypedLink::OutAtomic(labels_.Intern("a")),
                         TypedLink::OutAtomic(labels_.Intern("b"))}));
    return p;
  }
  graph::LabelInterner labels_;
};

TEST_P(PsiZeroWeightTest, ZeroWeightTypesClusterSafely) {
  TypingProgram p = MakeProgram();
  for (bool empty : {true, false}) {
    ClusteringOptions opt;
    opt.psi = GetParam();
    opt.target_num_types = 1;
    opt.enable_empty_type = empty;
    ASSERT_OK_AND_ASSIGN(ClusteringResult r, ClusterTypes(p, {0, 5, 7}, opt));
    for (const MergeStep& s : r.steps) {
      // A chosen step is never priced at infinity (infinite candidates
      // never win) and never NaN (clamping keeps 0-weight ratios finite).
      EXPECT_TRUE(std::isfinite(s.cost)) << PsiKindName(GetParam());
      EXPECT_GE(s.cost, 0.0) << PsiKindName(GetParam());
    }
    ASSERT_OK(r.final_program.Validate());
    uint64_t total = 0;
    for (uint64_t w : r.final_weights) total += w;
    EXPECT_LE(total, 12u);  // the w=0 type adds nothing anywhere it lands
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, PsiZeroWeightTest,
                         ::testing::Values(PsiKind::kSimpleD, PsiKind::kPsi1,
                                           PsiKind::kPsi2, PsiKind::kPsi3,
                                           PsiKind::kPsi4, PsiKind::kPsi5),
                         [](const ::testing::TestParamInfo<PsiKind>& info) {
                           return std::string(PsiKindName(info.param));
                         });

TEST(ClusterTest, EmptyMoveClampsBothWeightsPsi3) {
  // psi3 = (w1*w2)^(1/d). Moving the zero-weight type to the (weight-0)
  // empty type clamps both sides to 1: cost = (1*1)^(1/2) = 1, cheaper
  // than any real merge here — pinning the clamp exactly.
  graph::LabelInterner labels;
  TypingProgram p;
  p.AddType("w0", TypeSignature::FromLinks(
                      {TypedLink::OutAtomic(labels.Intern("x1")),
                       TypedLink::OutAtomic(labels.Intern("x2"))}));
  p.AddType("t1", TypeSignature::FromLinks(
                      {TypedLink::OutAtomic(labels.Intern("a"))}));
  p.AddType("t2", TypeSignature::FromLinks(
                      {TypedLink::OutAtomic(labels.Intern("a")),
                       TypedLink::OutAtomic(labels.Intern("b"))}));
  ClusteringOptions opt;
  opt.psi = PsiKind::kPsi3;
  opt.target_num_types = 2;
  ASSERT_OK_AND_ASSIGN(ClusteringResult r, ClusterTypes(p, {0, 5, 7}, opt));
  ASSERT_EQ(r.steps.size(), 1u);
  EXPECT_EQ(r.steps[0].source, 0);
  EXPECT_EQ(r.steps[0].dest, kEmptyType);
  EXPECT_DOUBLE_EQ(r.steps[0].cost, 1.0);
}

TEST(ClusterTest, EmptyMoveClampsDestWeightPsi4) {
  // psi4 = L^d * w2. Moving the single-link w=0 type into the empty type
  // clamps the empty type's weight 0 to 1: cost = 4^1 * 1 = 4, strictly
  // below every real merge and every larger empty move.
  graph::LabelInterner labels;
  TypingProgram p;
  p.AddType("w0", TypeSignature::FromLinks(
                      {TypedLink::OutAtomic(labels.Intern("x1"))}));
  p.AddType("t1", TypeSignature::FromLinks(
                      {TypedLink::OutAtomic(labels.Intern("a")),
                       TypedLink::OutAtomic(labels.Intern("b"))}));
  p.AddType("t2", TypeSignature::FromLinks(
                      {TypedLink::OutAtomic(labels.Intern("a")),
                       TypedLink::OutAtomic(labels.Intern("b")),
                       TypedLink::OutAtomic(labels.Intern("c"))}));
  ASSERT_EQ(p.NumDistinctTypedLinks(), 4u);
  ClusteringOptions opt;
  opt.psi = PsiKind::kPsi4;
  opt.target_num_types = 2;
  ASSERT_OK_AND_ASSIGN(ClusteringResult r, ClusterTypes(p, {0, 5, 7}, opt));
  ASSERT_EQ(r.steps.size(), 1u);
  EXPECT_EQ(r.steps[0].source, 0);
  EXPECT_EQ(r.steps[0].dest, kEmptyType);
  EXPECT_DOUBLE_EQ(r.steps[0].cost, 4.0);
}

TEST(ClusterTest, DeterministicAcrossRuns) {
  graph::LabelInterner labels;
  TypingProgram p;
  for (int i = 0; i < 6; ++i) {
    p.AddType("t" + std::to_string(i),
              TypeSignature::FromLinks(
                  {TypedLink::OutAtomic(labels.Intern("a")),
                   TypedLink::OutAtomic(
                       labels.Intern("x" + std::to_string(i % 3)))}));
  }
  ClusteringOptions opt;
  opt.target_num_types = 2;
  ASSERT_OK_AND_ASSIGN(ClusteringResult r1,
                       ClusterTypes(p, {5, 4, 3, 2, 1, 1}, opt));
  ASSERT_OK_AND_ASSIGN(ClusteringResult r2,
                       ClusterTypes(p, {5, 4, 3, 2, 1, 1}, opt));
  EXPECT_EQ(r1.final_map, r2.final_map);
  EXPECT_EQ(r1.total_distance, r2.total_distance);
}

}  // namespace
}  // namespace schemex::cluster
