// DeltaOverlay equivalence suite. The reference model is a DataGraph
// mutated by the same op sequence: every read (counts, kinds, values,
// adjacency, label table), every Status outcome, and the bytes of a
// snapshot written from Compact() must match the reference exactly.

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "gen/dbg.h"
#include "graph/data_graph.h"
#include "graph/delta_overlay.h"
#include "graph/frozen_graph.h"
#include "graph/graph_view.h"
#include "snapshot/snapshot.h"
#include "tests/test_util.h"

namespace schemex::graph {
namespace {

namespace fs = std::filesystem;

/// Asserts the overlay and the reference DataGraph answer every read
/// identically (object by object, edge by edge).
void ExpectSameReads(const DeltaOverlay& ov, const DataGraph& ref) {
  ASSERT_EQ(ov.NumObjects(), ref.NumObjects());
  EXPECT_EQ(ov.NumComplexObjects(), ref.NumComplexObjects());
  EXPECT_EQ(ov.NumAtomicObjects(), ref.NumAtomicObjects());
  EXPECT_EQ(ov.NumEdges(), ref.NumEdges());
  ASSERT_EQ(ov.labels().size(), ref.labels().size());
  for (LabelId l = 0; l < static_cast<LabelId>(ref.labels().size()); ++l) {
    EXPECT_EQ(ov.labels().Name(l), ref.labels().Name(l)) << "label " << l;
  }
  for (ObjectId o = 0; o < ref.NumObjects(); ++o) {
    EXPECT_EQ(ov.IsAtomic(o), ref.IsAtomic(o)) << "object " << o;
    EXPECT_EQ(ov.Value(o), ref.Value(o)) << "object " << o;
    EXPECT_EQ(ov.Name(o), ref.Name(o)) << "object " << o;
    auto ov_out = ov.OutEdges(o);
    auto ref_out = ref.OutEdges(o);
    ASSERT_EQ(ov_out.size(), ref_out.size()) << "out row of " << o;
    for (size_t i = 0; i < ov_out.size(); ++i) {
      EXPECT_EQ(ov_out[i], ref_out[i]) << "out edge " << i << " of " << o;
    }
    auto ov_in = ov.InEdges(o);
    auto ref_in = ref.InEdges(o);
    ASSERT_EQ(ov_in.size(), ref_in.size()) << "in row of " << o;
    for (size_t i = 0; i < ov_in.size(); ++i) {
      EXPECT_EQ(ov_in[i], ref_in[i]) << "in edge " << i << " of " << o;
    }
  }
}

TEST(DeltaOverlayTest, EmptyDeltaReadsThroughToBase) {
  DataGraph base = test::MakeFigure2Database();
  auto frozen = Freeze(base);
  DeltaOverlay ov(frozen);
  ExpectSameReads(ov, base);
  EXPECT_EQ(ov.generation(), 0u);
  EXPECT_EQ(ov.NumAddedObjects(), 0u);
  EXPECT_TRUE(ov.TouchedComplexObjects().empty());
  EXPECT_EQ(ov.TouchedComplexFraction(), 0.0);
  ASSERT_OK(ov.Validate());
}

TEST(DeltaOverlayTest, MutationsMirrorDataGraph) {
  DataGraph ref = test::MakeFigure2Database();
  auto frozen = Freeze(ref);
  DeltaOverlay ov(frozen);

  // New objects after the base id space, ids matching the reference.
  ObjectId p = ov.AddComplex("p");
  EXPECT_EQ(p, ref.AddComplex("p"));
  ObjectId v = ov.AddAtomic("Person", "v");
  EXPECT_EQ(v, ref.AddAtomic("Person", "v"));

  // New edges: base-to-new, new-to-base, fresh label.
  ASSERT_OK(ov.AddEdge(p, v, "kind"));
  ASSERT_OK(ref.AddEdge(p, v, "kind"));
  ASSERT_OK(ov.AddEdge(0, p, "knows"));
  ASSERT_OK(ref.AddEdge(0, p, "knows"));

  // Delete a base-resident edge.
  LabelId name = ov.labels().Find("name");
  ASSERT_NE(name, kInvalidLabel);
  ASSERT_OK(ov.RemoveEdge(0, 4, name));
  ASSERT_OK(ref.RemoveEdge(0, 4, name));

  ExpectSameReads(ov, ref);
  ASSERT_OK(ov.Validate());
  EXPECT_EQ(ov.NumAddedObjects(), 2u);
  EXPECT_EQ(ov.NumAddedLinks(), 2u);
  EXPECT_EQ(ov.NumDeletedLinks(), 1u);
  EXPECT_GT(ov.generation(), 0u);
}

TEST(DeltaOverlayTest, StatusSemanticsMatchDataGraph) {
  DataGraph ref = test::MakeFigure2Database();
  auto frozen = Freeze(ref);
  DeltaOverlay ov(frozen);
  LabelId name = ov.labels().Find("name");

  struct Case {
    const char* what;
    util::Status got;
    util::Status want;
  };
  // Each failing op runs against both models; codes AND messages match.
  std::vector<Case> cases;
  cases.push_back({"out-of-range from", ov.AddEdge(99, 0, name),
                   ref.AddEdge(99, 0, name)});
  cases.push_back({"out-of-range to", ov.AddEdge(0, 99, name),
                   ref.AddEdge(0, 99, name)});
  cases.push_back({"atomic source", ov.AddEdge(4, 0, name),
                   ref.AddEdge(4, 0, name)});
  cases.push_back({"duplicate edge", ov.AddEdge(0, 4, name),
                   ref.AddEdge(0, 4, name)});
  cases.push_back({"remove missing edge", ov.RemoveEdge(0, 1, name),
                   ref.RemoveEdge(0, 1, name)});
  cases.push_back({"remove out-of-range", ov.RemoveEdge(99, 0, name),
                   ref.RemoveEdge(99, 0, name)});
  for (const Case& c : cases) {
    EXPECT_EQ(c.got.code(), c.want.code()) << c.what;
    EXPECT_EQ(c.got.message(), c.want.message()) << c.what;
  }
  // Failed ops leave no trace.
  ExpectSameReads(ov, ref);
  EXPECT_EQ(ov.generation(), 0u);
}

TEST(DeltaOverlayTest, CopyIsolatesDeltas) {
  DataGraph base = test::MakeFigure2Database();
  auto frozen = Freeze(base);
  DeltaOverlay a(frozen);
  ASSERT_OK(a.AddEdge(0, 1, "peer"));
  DeltaOverlay b = a;  // copy shares the base, clones the delta
  ObjectId nb = b.AddComplex("only-in-b");
  ASSERT_OK(b.AddEdge(nb, 0, "ref"));
  LabelId name = a.labels().Find("name");
  ASSERT_OK(a.RemoveEdge(0, 4, name));

  EXPECT_EQ(a.NumObjects(), base.NumObjects());
  EXPECT_EQ(b.NumObjects(), base.NumObjects() + 1);
  EXPECT_FALSE(a.HasEdge(nb, 0, b.labels().Find("ref")));
  EXPECT_TRUE(b.HasEdge(0, 4, name));
  EXPECT_FALSE(a.HasEdge(0, 4, name));
  ASSERT_OK(a.Validate());
  ASSERT_OK(b.Validate());
}

TEST(DeltaOverlayTest, TouchedComplexObjectsIsSortedConservativeSet) {
  DataGraph base = test::MakeFigure2Database();
  auto frozen = Freeze(base);
  DeltaOverlay ov(frozen);
  ObjectId p = ov.AddComplex("p");
  ASSERT_OK(ov.AddEdge(1, p, "knows"));
  // Add then remove: endpoints stay touched (conservative).
  ASSERT_OK(ov.AddEdge(0, 1, "peer"));
  LabelId peer = ov.labels().Find("peer");
  ASSERT_OK(ov.RemoveEdge(0, 1, peer));

  std::vector<ObjectId> touched = ov.TouchedComplexObjects();
  EXPECT_EQ(touched, (std::vector<ObjectId>{0, 1, p}));
  EXPECT_GT(ov.TouchedComplexFraction(), 0.0);
}

TEST(DeltaOverlayTest, CompactSnapshotBytesMatchMutatedDataGraph) {
  // Larger base + randomized delta: Compact() must produce a FrozenGraph
  // whose serialized snapshot is byte-identical to freezing a DataGraph
  // that saw the same ops.
  ASSERT_OK_AND_ASSIGN(DataGraph ref, gen::MakeDbgDataset(5));
  auto frozen = Freeze(ref);
  DeltaOverlay ov(frozen);

  std::mt19937 rng(1234);
  auto rnd = [&](size_t n) { return static_cast<uint32_t>(rng() % n); };
  std::vector<ObjectId> complexes;
  for (ObjectId o = 0; o < ref.NumObjects(); ++o) {
    if (ref.IsComplex(o)) complexes.push_back(o);
  }
  for (int i = 0; i < 40; ++i) {
    int kind = static_cast<int>(rng() % 4);
    if (kind == 0) {
      std::string name = "n" + std::to_string(i);
      EXPECT_EQ(ov.AddComplex(name), ref.AddComplex(name));
    } else if (kind == 1) {
      std::string val = "v" + std::to_string(i);
      EXPECT_EQ(ov.AddAtomic(val), ref.AddAtomic(val));
    } else if (kind == 2) {
      ObjectId from = complexes[rnd(complexes.size())];
      ObjectId to = rnd(ref.NumObjects());
      std::string label = "l" + std::to_string(rng() % 6);
      util::Status a = ov.AddEdge(from, to, label);
      util::Status b = ref.AddEdge(from, to, label);
      EXPECT_EQ(a.code(), b.code());
    } else {
      ObjectId from = complexes[rnd(complexes.size())];
      auto out = ref.OutEdges(from);
      if (out.empty()) continue;
      const HalfEdge e = out[rnd(out.size())];
      ASSERT_OK(ov.RemoveEdge(from, e.other, e.label));
      ASSERT_OK(ref.RemoveEdge(from, e.other, e.label));
    }
  }
  ExpectSameReads(ov, ref);
  ASSERT_OK(ov.Validate());

  auto compacted = ov.Compact();
  auto ref_frozen = Freeze(ref);

  fs::path dir = fs::temp_directory_path() /
                 ("schemex_overlay_" + std::to_string(::getpid()));
  fs::create_directories(dir);
  ASSERT_OK(snapshot::Write(*compacted, (dir / "a.bin").string()));
  ASSERT_OK(snapshot::Write(*ref_frozen, (dir / "b.bin").string()));
  auto slurp = [](const fs::path& p) {
    std::ifstream in(p, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  };
  std::string a = slurp(dir / "a.bin");
  std::string b = slurp(dir / "b.bin");
  fs::remove_all(dir);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b) << "Compact() snapshot drifted from the reference freeze";
}

TEST(DeltaOverlayTest, GraphViewRoutesThroughOverlay) {
  DataGraph base = test::MakeFigure2Database();
  auto frozen = Freeze(base);
  DeltaOverlay ov(frozen);
  ObjectId p = ov.AddComplex("p");
  ASSERT_OK(ov.AddEdge(p, 0, "knows"));

  GraphView view(ov);
  EXPECT_EQ(view.NumObjects(), ov.NumObjects());
  EXPECT_EQ(view.NumEdges(), ov.NumEdges());
  EXPECT_FALSE(view.IsAtomic(p));
  ASSERT_EQ(view.OutEdges(p).size(), 1u);
  EXPECT_EQ(view.OutEdges(p)[0].other, 0u);
  EXPECT_EQ(view.InEdges(0).size(), ov.InEdges(0).size());
  EXPECT_EQ(&view.labels(), &ov.labels());
}

}  // namespace
}  // namespace schemex::graph
