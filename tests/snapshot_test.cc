// Round-trip and integration tests for the binary snapshot store
// (src/snapshot/): Map(Write(g)) must be bit-identical to g, mappings
// must outlive unlink/replace of the file, and the catalog must prefer
// a snapshot yet fall back to the text files when it is missing, stale,
// or corrupt. Corruption-rejection fuzzing lives in
// snapshot_corruption_test.cc.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "catalog/workspace.h"
#include "extract/extractor.h"
#include "gen/dbg.h"
#include "graph/graph_builder.h"
#include "snapshot/mapped_file.h"
#include "snapshot/snapshot.h"
#include "tests/test_util.h"
#include "util/random.h"
#include "util/string_util.h"

namespace schemex::snapshot {
namespace {

namespace fs = std::filesystem;

class SnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("schemex_snap_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string Path(const char* name) const { return (dir_ / name).string(); }

  fs::path dir_;
};

/// A seeded random bipartite-ish graph: complex objects with random
/// labeled edges to both complex and atomic targets, random-length
/// values/names so the text arena has interesting offsets.
graph::DataGraph MakeRandomGraph(uint64_t seed, size_t num_complex,
                                 size_t num_atomic, size_t num_edges) {
  util::Rng rng(seed);
  graph::GraphBuilder b;
  for (size_t i = 0; i < num_complex; ++i) {
    EXPECT_OK(b.Complex(util::StringPrintf("c%zu", i)));
  }
  for (size_t i = 0; i < num_atomic; ++i) {
    std::string value(rng.Uniform(24), 'x');
    for (char& c : value) c = static_cast<char>('a' + rng.Uniform(26));
    EXPECT_OK(b.Atomic(util::StringPrintf("a%zu", i), value));
  }
  std::set<std::string> seen;  // the builder treats duplicates as misuse
  size_t added = 0;
  for (size_t attempts = 0; added < num_edges && attempts < num_edges * 10;
       ++attempts) {
    std::string from = util::StringPrintf("c%llu",
        static_cast<unsigned long long>(rng.Uniform(num_complex)));
    std::string label = util::StringPrintf("l%llu",
        static_cast<unsigned long long>(rng.Uniform(8)));
    std::string to =
        rng.Bernoulli(0.5) && num_atomic > 0
            ? util::StringPrintf("a%llu", static_cast<unsigned long long>(
                                              rng.Uniform(num_atomic)))
            : util::StringPrintf("c%llu", static_cast<unsigned long long>(
                                              rng.Uniform(num_complex)));
    if (!seen.insert(from + "|" + label + "|" + to).second) continue;
    EXPECT_OK(b.Edge(from, label, to));
    ++added;
  }
  util::Status st;
  graph::DataGraph g = std::move(b).Build(&st);
  EXPECT_OK(st);
  return g;
}

template <typename T>
void ExpectSpanBytesEqual(std::span<const T> a, std::span<const T> b,
                          const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size_bytes()), 0) << what;
}

/// Bit-identical: every CSR array, the arena, and the label table of the
/// mapped graph must match the original byte for byte.
void ExpectBitIdentical(const graph::FrozenGraph& a,
                        const graph::FrozenGraph& b) {
  ASSERT_EQ(a.NumObjects(), b.NumObjects());
  ASSERT_EQ(a.NumComplexObjects(), b.NumComplexObjects());
  ASSERT_EQ(a.NumEdges(), b.NumEdges());
  graph::FrozenGraph::Parts pa = a.parts();
  graph::FrozenGraph::Parts pb = b.parts();
  ExpectSpanBytesEqual(pa.out_off, pb.out_off, "out_off");
  ExpectSpanBytesEqual(pa.in_off, pb.in_off, "in_off");
  ExpectSpanBytesEqual(pa.text_off, pb.text_off, "text_off");
  ExpectSpanBytesEqual(pa.atomic_words, pb.atomic_words, "atomic_words");
  ExpectSpanBytesEqual(pa.out_edges, pb.out_edges, "out_edges");
  ExpectSpanBytesEqual(pa.in_edges, pb.in_edges, "in_edges");
  EXPECT_EQ(pa.arena, pb.arena);
  ASSERT_EQ(a.labels().size(), b.labels().size());
  for (graph::LabelId l = 0; l < a.labels().size(); ++l) {
    EXPECT_EQ(a.labels().Name(l), b.labels().Name(l)) << "label " << l;
  }
}

TEST_F(SnapshotTest, RoundTripRandomGraphsRawAndCompact) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    graph::DataGraph g =
        MakeRandomGraph(seed, /*num_complex=*/40 + seed * 7,
                        /*num_atomic=*/30, /*num_edges=*/200);
    auto frozen = graph::Freeze(g);
    for (bool compact : {false, true}) {
      SCOPED_TRACE(util::StringPrintf("seed=%llu compact=%d",
                                      static_cast<unsigned long long>(seed),
                                      compact ? 1 : 0));
      std::string path = Path(compact ? "c.bin" : "r.bin");
      WriteOptions opt;
      opt.compact = compact;
      ASSERT_OK(Write(*frozen, path, opt));
      ASSERT_OK_AND_ASSIGN(auto mapped, Map(path));
      ExpectBitIdentical(*frozen, *mapped);
      EXPECT_OK(mapped->Validate());
      // Raw snapshots are zero-copy: the big arrays live in the file,
      // not on the heap. Compact snapshots decode into owned arenas.
      if (compact) {
        EXPECT_GT(mapped->MemoryUsage(), mapped->MappedBytes() / 4);
      } else {
        EXPECT_LT(mapped->MemoryUsage(), mapped->MappedBytes() / 4);
      }
    }
  }
}

TEST_F(SnapshotTest, RoundTripFigure2AndDbg) {
  auto check = [&](const graph::DataGraph& src) {
    auto frozen = graph::Freeze(src);
    ASSERT_OK(Write(*frozen, Path("g.bin")));
    ASSERT_OK_AND_ASSIGN(auto mapped, Map(Path("g.bin")));
    ExpectBitIdentical(*frozen, *mapped);
    EXPECT_OK(mapped->Validate());
  };
  check(test::MakeFigure2Database());
  auto dbg = gen::MakeDbgDataset(7);
  ASSERT_TRUE(dbg.ok());
  check(*dbg);
}

TEST_F(SnapshotTest, RoundTripEmptyGraph) {
  graph::DataGraph empty;
  auto frozen = graph::Freeze(empty);
  ASSERT_OK(Write(*frozen, Path("empty.bin")));
  ASSERT_OK_AND_ASSIGN(auto mapped, Map(Path("empty.bin")));
  EXPECT_EQ(mapped->NumObjects(), 0u);
  EXPECT_EQ(mapped->NumEdges(), 0u);
  EXPECT_OK(mapped->Validate());
}

TEST_F(SnapshotTest, MappingSurvivesUnlinkAndIsAccounted) {
  graph::DataGraph g = MakeRandomGraph(5, 30, 20, 120);
  auto frozen = graph::Freeze(g);
  ASSERT_OK(Write(*frozen, Path("g.bin")));

  size_t base_bytes = LiveMappedBytes();
  {
    ASSERT_OK_AND_ASSIGN(auto mapped, Map(Path("g.bin")));
    EXPECT_EQ(LiveMappedBytes(), base_bytes + mapped->MappedBytes());
    // POSIX keeps the mapping alive after the directory entry is gone:
    // replacing a snapshot (tmp+rename in SaveWorkspace) must never pull
    // pages out from under a workspace that already mapped the old one.
    fs::remove(Path("g.bin"));
    ExpectBitIdentical(*frozen, *mapped);
    EXPECT_OK(mapped->Validate());
  }
  EXPECT_EQ(LiveMappedBytes(), base_bytes);  // unmapped on last release
}

TEST_F(SnapshotTest, ConcurrentMapAndRead) {
  graph::DataGraph g = MakeRandomGraph(11, 50, 40, 250);
  auto frozen = graph::Freeze(g);
  ASSERT_OK(Write(*frozen, Path("g.bin")));
  for (size_t num_threads : {1u, 4u}) {
    std::vector<std::thread> threads;
    std::atomic<int> failures{0};
    for (size_t t = 0; t < num_threads; ++t) {
      threads.emplace_back([&] {
        auto mapped = Map(Path("g.bin"));
        if (!mapped.ok() || !(*mapped)->Validate().ok() ||
            (*mapped)->NumEdges() != frozen->NumEdges()) {
          ++failures;
        }
      });
    }
    for (auto& th : threads) th.join();
    EXPECT_EQ(failures.load(), 0) << num_threads << " threads";
  }
}

TEST_F(SnapshotTest, InspectReportsSectionsAndCrcs) {
  graph::DataGraph g = MakeRandomGraph(3, 20, 15, 80);
  auto frozen = graph::Freeze(g);
  ASSERT_OK(Write(*frozen, Path("g.bin")));
  ASSERT_OK_AND_ASSIGN(SnapshotInfo info, Inspect(Path("g.bin")));
  EXPECT_EQ(info.version, 1u);
  EXPECT_EQ(info.num_objects, frozen->NumObjects());
  EXPECT_EQ(info.num_edges, frozen->NumEdges());
  EXPECT_EQ(info.num_labels, frozen->labels().size());
  EXPECT_EQ(info.sections.size(), 9u);
  for (const auto& s : info.sections) {
    EXPECT_TRUE(s.crc_ok) << s.name;
    EXPECT_EQ(s.encoding, "raw") << s.name;
    EXPECT_NE(s.name, "unknown");
  }
}

// ---------------------------------------------------------------------
// Catalog integration: snapshot preference and text fallback.

TEST_F(SnapshotTest, WorkspacePrefersSnapshot) {
  catalog::Workspace ws;
  ws.SetGraph(test::MakeFigure2Database());
  ws.assignment = typing::TypeAssignment(ws.graph->NumObjects());
  ASSERT_OK(catalog::SaveWorkspace(ws, dir_.string()));
  ASSERT_TRUE(fs::exists(dir_ / "snapshot.bin"));

  // Corrupt the text graph: if the loader really prefers the snapshot it
  // never parses graph.sxg at all.
  { std::ofstream(dir_ / "graph.sxg") << "not a graph\n"; }
  catalog::LoadInfo info;
  ASSERT_OK_AND_ASSIGN(catalog::Workspace back,
                       catalog::LoadWorkspace(dir_.string(), &info));
  EXPECT_TRUE(info.from_snapshot);
  EXPECT_OK(info.snapshot_status);
  EXPECT_EQ(back.graph->NumObjects(), ws.graph->NumObjects());
  EXPECT_GT(back.graph->MappedBytes(), 0u);
}

TEST_F(SnapshotTest, WorkspaceFallsBackOnCorruptSnapshot) {
  catalog::Workspace ws;
  ws.SetGraph(test::MakeFigure2Database());
  ws.assignment = typing::TypeAssignment(ws.graph->NumObjects());
  ASSERT_OK(catalog::SaveWorkspace(ws, dir_.string()));

  // Truncate the snapshot; the text files stay authoritative.
  fs::resize_file(dir_ / "snapshot.bin", 100);
  catalog::LoadInfo info;
  ASSERT_OK_AND_ASSIGN(catalog::Workspace back,
                       catalog::LoadWorkspace(dir_.string(), &info));
  EXPECT_FALSE(info.from_snapshot);
  EXPECT_FALSE(info.snapshot_status.ok());
  EXPECT_NE(info.snapshot_status.code(), util::StatusCode::kNotFound);
  EXPECT_EQ(back.graph->NumObjects(), ws.graph->NumObjects());
  EXPECT_EQ(back.graph->MappedBytes(), 0u);
}

TEST_F(SnapshotTest, WorkspaceSchemaAndAssignmentRideAlong) {
  auto g = gen::MakeDbgDataset(3);
  ASSERT_TRUE(g.ok());
  extract::ExtractorOptions opt;
  opt.target_num_types = 6;
  auto r = extract::SchemaExtractor(opt).Run(*g);
  ASSERT_TRUE(r.ok());
  catalog::Workspace ws;
  ws.SetGraph(*g);
  ws.program = r->final_program;
  ws.assignment = r->recast.assignment;
  ASSERT_OK(catalog::SaveWorkspace(ws, dir_.string()));

  catalog::LoadInfo info;
  ASSERT_OK_AND_ASSIGN(catalog::Workspace back,
                       catalog::LoadWorkspace(dir_.string(), &info));
  EXPECT_TRUE(info.from_snapshot) << info.snapshot_status.ToString();
  EXPECT_EQ(back.program.NumTypes(), ws.program.NumTypes());
  for (graph::ObjectId o = 0; o < back.graph->NumObjects(); ++o) {
    ASSERT_EQ(back.assignment.TypesOf(o), ws.assignment.TypesOf(o))
        << "object " << o;
  }
}

TEST_F(SnapshotTest, StaleSnapshotFallsBackWhenSchemaGrows) {
  catalog::Workspace ws;
  ws.SetGraph(test::MakeFigure2Database());
  ws.assignment = typing::TypeAssignment(ws.graph->NumObjects());
  ASSERT_OK(catalog::SaveWorkspace(ws, dir_.string()));

  // A schema edited after the snapshot was written, referencing a label
  // the frozen label table has never seen: the snapshot is stale, the
  // text path (which interns freely pre-freeze) must take over.
  {
    std::ofstream out(dir_ / "schema.dl");
    out << "t0(X) :- link(X, V1, \"brand-new-label\"), t0(V1).\n";
  }
  catalog::LoadInfo info;
  ASSERT_OK_AND_ASSIGN(catalog::Workspace back,
                       catalog::LoadWorkspace(dir_.string(), &info));
  EXPECT_FALSE(info.from_snapshot);
  EXPECT_EQ(info.snapshot_status.code(),
            util::StatusCode::kFailedPrecondition)
      << info.snapshot_status.ToString();
  EXPECT_EQ(back.program.NumTypes(), 1u);
}

// ---------------------------------------------------------------------
// Satellite: text-path parse errors name the offending file.

TEST_F(SnapshotTest, TextLoadErrorsNameFileAndLine) {
  catalog::Workspace ws;
  ws.SetGraph(test::MakeFigure2Database());
  ws.assignment = typing::TypeAssignment(ws.graph->NumObjects());
  ASSERT_OK(catalog::SaveWorkspace(ws, dir_.string()));
  fs::remove(dir_ / "snapshot.bin");  // force the text path

  {
    // Break line 2 of the graph file.
    std::ifstream in(dir_ / "graph.sxg");
    std::string first;
    std::getline(in, first);
    in.close();
    std::ofstream out(dir_ / "graph.sxg");
    out << first << "\n!!! not a graph line\n";
  }
  auto bad = catalog::LoadWorkspace(dir_.string());
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("graph.sxg: line 2"),
            std::string::npos)
      << bad.status().ToString();
}

TEST_F(SnapshotTest, AssignmentErrorsNameFileAndLine) {
  catalog::Workspace ws;
  ws.SetGraph(test::MakeFigure2Database());
  ws.assignment = typing::TypeAssignment(ws.graph->NumObjects());
  ASSERT_OK(catalog::SaveWorkspace(ws, dir_.string()));
  { std::ofstream(dir_ / "assignment.tsv") << "# ok\nnot-a-row\n"; }
  // Both paths (snapshot present here) must surface the same message.
  auto bad = catalog::LoadWorkspace(dir_.string());
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("assignment.tsv line 2"),
            std::string::npos)
      << bad.status().ToString();
}

}  // namespace
}  // namespace schemex::snapshot
