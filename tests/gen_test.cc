#include <gtest/gtest.h>

#include <set>

#include "gen/dbg.h"
#include "gen/perturb.h"
#include "gen/random_graph.h"
#include "gen/spec.h"
#include "gen/table1.h"
#include "graph/graph_io.h"
#include "graph/graph_stats.h"
#include "tests/test_util.h"

namespace schemex::gen {
namespace {

TEST(SpecTest, BipartiteAndOverlapDetection) {
  DatasetSpec flat;
  flat.types.push_back(TypeSpec{"a", 1, {{"x", kAtomicTarget, 1.0}}});
  flat.types.push_back(TypeSpec{"b", 1, {{"y", kAtomicTarget, 1.0}}});
  EXPECT_TRUE(flat.IsBipartite());
  EXPECT_FALSE(flat.HasOverlap());

  DatasetSpec deep = flat;
  deep.types[0].links.push_back({"r", 1, 0.5});
  EXPECT_FALSE(deep.IsBipartite());

  DatasetSpec overlap = flat;
  overlap.types[1].links.push_back({"x", kAtomicTarget, 1.0});
  EXPECT_TRUE(overlap.HasOverlap());

  // The same link repeated within ONE type is not overlap.
  DatasetSpec self_dup = flat;
  self_dup.types[0].links.push_back({"x", kAtomicTarget, 0.2});
  EXPECT_FALSE(self_dup.HasOverlap());
}

TEST(GenerateTest, DeterministicForSeed) {
  DatasetSpec spec = DbgSpec();
  ASSERT_OK_AND_ASSIGN(graph::DataGraph g1, Generate(spec, 5));
  ASSERT_OK_AND_ASSIGN(graph::DataGraph g2, Generate(spec, 5));
  ASSERT_OK_AND_ASSIGN(graph::DataGraph g3, Generate(spec, 6));
  EXPECT_EQ(graph::WriteGraph(g1), graph::WriteGraph(g2));
  EXPECT_NE(graph::WriteGraph(g1), graph::WriteGraph(g3));
}

TEST(GenerateTest, RespectsCountsAndProbabilities) {
  DatasetSpec spec;
  spec.types.push_back(TypeSpec{"t", 200,
                                {{"always", kAtomicTarget, 1.0},
                                 {"never", kAtomicTarget, 0.0},
                                 {"half", kAtomicTarget, 0.5}}});
  ASSERT_OK_AND_ASSIGN(graph::DataGraph g, Generate(spec, 3));
  EXPECT_EQ(g.NumComplexObjects(), 200u);
  graph::GraphStats s = graph::ComputeStats(g);
  graph::LabelId always = g.labels().Find("always");
  graph::LabelId half = g.labels().Find("half");
  EXPECT_EQ(s.label_histogram[always], 200u);
  EXPECT_EQ(g.labels().Find("never"), graph::kInvalidLabel);
  EXPECT_GT(s.label_histogram[half], 60u);
  EXPECT_LT(s.label_histogram[half], 140u);
  ASSERT_OK(g.Validate());
}

TEST(GenerateTest, AtomicPoolBoundsAtomCount) {
  DatasetSpec spec;
  spec.atomic_pool_per_label = 7;
  spec.types.push_back(TypeSpec{"t", 100, {{"v", kAtomicTarget, 1.0}}});
  ASSERT_OK_AND_ASSIGN(graph::DataGraph g, Generate(spec, 3));
  EXPECT_LE(g.NumAtomicObjects(), 7u);

  DatasetSpec fresh = spec;
  fresh.atomic_pool_per_label = 0;
  ASSERT_OK_AND_ASSIGN(graph::DataGraph g2, Generate(fresh, 3));
  EXPECT_EQ(g2.NumAtomicObjects(), 100u);  // one per link
}

TEST(GenerateTest, ComplexTargetsStayInTargetType) {
  DatasetSpec spec;
  spec.types.push_back(TypeSpec{"src", 30, {{"r", 1, 1.0}}});
  spec.types.push_back(TypeSpec{"dst", 10, {{"v", kAtomicTarget, 1.0}}});
  ASSERT_OK_AND_ASSIGN(graph::DataGraph g, Generate(spec, 4));
  graph::LabelId r = g.labels().Find("r");
  for (graph::ObjectId o = 0; o < g.NumObjects(); ++o) {
    for (const graph::HalfEdge& e : g.OutEdges(o)) {
      if (e.label != r) continue;
      // Targets are named dst_<i>.
      EXPECT_EQ(g.Name(e.other).substr(0, 4), "dst_");
    }
  }
}

TEST(GenerateTest, InputValidation) {
  DatasetSpec bad_target;
  bad_target.types.push_back(TypeSpec{"t", 1, {{"r", 9, 1.0}}});
  EXPECT_FALSE(Generate(bad_target, 1).ok());

  DatasetSpec bad_prob;
  bad_prob.types.push_back(TypeSpec{"t", 1, {{"r", kAtomicTarget, 1.5}}});
  EXPECT_FALSE(Generate(bad_prob, 1).ok());

  DatasetSpec zero_count;
  zero_count.types.push_back(TypeSpec{"t", 0, {}});
  EXPECT_FALSE(Generate(zero_count, 1).ok());
}

TEST(PerturbTest, DeletesAndAddsRequestedCounts) {
  ASSERT_OK_AND_ASSIGN(graph::DataGraph g, MakeDbgDataset(7));
  size_t before = g.NumEdges();
  PerturbOptions opt;
  opt.delete_links = 10;
  opt.add_links = 25;
  opt.seed = 3;
  PerturbStats stats;
  ASSERT_OK(Perturb(&g, opt, &stats));
  EXPECT_EQ(stats.deleted, 10u);
  EXPECT_EQ(stats.added, 25u);
  EXPECT_EQ(g.NumEdges(), before - 10 + 25);
  ASSERT_OK(g.Validate());
}

TEST(PerturbTest, FreshLabelsIntroduced) {
  ASSERT_OK_AND_ASSIGN(graph::DataGraph g, MakeDbgDataset(7));
  PerturbOptions opt;
  opt.add_links = 50;
  opt.fresh_labels = 3;
  ASSERT_OK(Perturb(&g, opt));
  EXPECT_NE(g.labels().Find("noise0"), graph::kInvalidLabel);
  EXPECT_NE(g.labels().Find("noise2"), graph::kInvalidLabel);
}

TEST(PerturbTest, AtomicTargetFractionRespected) {
  ASSERT_OK_AND_ASSIGN(graph::DataGraph base, MakeDbgDataset(7));
  // With fraction 1.0 every added edge targets an atomic object.
  graph::DataGraph g = base;
  size_t atomic_in_before = 0, atomic_in_after = 0;
  for (graph::ObjectId o = 0; o < g.NumObjects(); ++o) {
    if (g.IsAtomic(o)) atomic_in_before += g.InEdges(o).size();
  }
  PerturbOptions opt;
  opt.add_links = 40;
  opt.atomic_target_fraction = 1.0;
  ASSERT_OK(Perturb(&g, opt));
  for (graph::ObjectId o = 0; o < g.NumObjects(); ++o) {
    if (g.IsAtomic(o)) atomic_in_after += g.InEdges(o).size();
  }
  EXPECT_EQ(atomic_in_after - atomic_in_before, 40u);
}

TEST(PerturbTest, EmptyGraphEdgeCases) {
  graph::DataGraph empty;
  PerturbOptions none;
  ASSERT_OK(Perturb(&empty, none));
  PerturbOptions add;
  add.add_links = 1;
  EXPECT_FALSE(Perturb(&empty, add).ok());
}

TEST(Table1Test, AllEightEntriesGenerate) {
  auto rows = Table1Datasets();
  ASSERT_EQ(rows.size(), 8u);
  std::set<std::string> names;
  for (const auto& e : rows) {
    names.insert(e.db_name);
    ASSERT_OK_AND_ASSIGN(graph::DataGraph g, MakeTable1Database(e));
    ASSERT_OK(g.Validate());
    EXPECT_GT(g.NumObjects(), 100u) << e.db_name;
    EXPECT_GT(g.NumEdges(), 100u) << e.db_name;
    // Bipartite column matches the generated graph (perturbation may add
    // complex-complex noise, so only check unperturbed entries).
    if (!e.perturbed) {
      EXPECT_EQ(g.IsBipartite(), e.spec.IsBipartite()) << e.db_name;
    }
    EXPECT_EQ(e.spec.HasOverlap(),
              e.db_name == "DB3" || e.db_name == "DB4" ||
                  e.db_name == "DB7" || e.db_name == "DB8")
        << e.db_name;
  }
  EXPECT_EQ(names.size(), 8u);
}

TEST(Table1Test, PerturbedPairsShareBaseData) {
  auto rows = Table1Datasets();
  // DB1/DB2 differ only by perturbation: same generation seed and spec.
  EXPECT_EQ(rows[0].generation_seed, rows[1].generation_seed);
  EXPECT_EQ(rows[0].spec.types.size(), rows[1].spec.types.size());
  EXPECT_FALSE(rows[0].perturbed);
  EXPECT_TRUE(rows[1].perturbed);
}

TEST(DbgTest, MatchesFigureOneRoles) {
  DatasetSpec spec = DbgSpec();
  ASSERT_EQ(spec.types.size(), 6u);
  std::set<std::string> names;
  for (const auto& t : spec.types) names.insert(t.name);
  EXPECT_TRUE(names.count("project"));
  EXPECT_TRUE(names.count("publication"));
  EXPECT_TRUE(names.count("db_person"));
  EXPECT_TRUE(names.count("student"));
  EXPECT_TRUE(names.count("birthday"));
  EXPECT_TRUE(names.count("degree"));
  EXPECT_FALSE(spec.IsBipartite());
  ASSERT_OK_AND_ASSIGN(graph::DataGraph g, MakeDbgDataset());
  ASSERT_OK(g.Validate());
  // Fig. 1 linkage: students have advisors, publications have authors.
  EXPECT_NE(g.labels().Find("advisor"), graph::kInvalidLabel);
  EXPECT_NE(g.labels().Find("author"), graph::kInvalidLabel);
}

TEST(RandomGraphTest, RespectsOptions) {
  RandomGraphOptions opt;
  opt.num_complex = 50;
  opt.num_atomic = 30;
  opt.num_edges = 120;
  opt.num_labels = 4;
  opt.seed = 1;
  graph::DataGraph g = RandomGraph(opt);
  EXPECT_EQ(g.NumComplexObjects(), 50u);
  EXPECT_EQ(g.NumAtomicObjects(), 30u);
  EXPECT_LE(g.NumEdges(), 120u);
  EXPECT_GT(g.NumEdges(), 100u);  // few collisions at this density
  EXPECT_EQ(g.labels().size(), 4u);
  ASSERT_OK(g.Validate());
}

TEST(RandomGraphTest, AtomicFractionExtremes) {
  RandomGraphOptions opt;
  opt.num_complex = 20;
  opt.num_atomic = 20;
  opt.num_edges = 60;
  opt.atomic_target_fraction = 1.0;
  opt.seed = 2;
  graph::DataGraph g = RandomGraph(opt);
  EXPECT_TRUE(g.IsBipartite());

  opt.atomic_target_fraction = 0.0;
  graph::DataGraph g2 = RandomGraph(opt);
  for (graph::ObjectId o = 0; o < g2.NumObjects(); ++o) {
    if (g2.IsAtomic(o)) {
      EXPECT_TRUE(g2.InEdges(o).empty());
    }
  }
}

}  // namespace
}  // namespace schemex::gen
