#include <gtest/gtest.h>

#include "datalog/evaluator.h"
#include "datalog/parser.h"
#include "datalog/printer.h"
#include "gen/random_graph.h"
#include "tests/test_util.h"
#include "typing/gfp.h"
#include "typing/perfect_typing.h"
#include "typing/typing_program.h"

namespace schemex::typing {
namespace {

/// Builds the Figure 2 typing program over `g`'s labels:
///   person = ->is-manager-of^firm, ->name^0
///   firm   = ->is-managed-by^person, ->name^0
TypingProgram MakeFigure2Program(graph::DataGraph* g) {
  graph::LabelId manages = g->InternLabel("is-manager-of");
  graph::LabelId managed = g->InternLabel("is-managed-by");
  graph::LabelId name = g->InternLabel("name");
  TypingProgram p;
  TypeId person = p.AddType("person", {});
  TypeId firm = p.AddType("firm", {});
  p.type(person).signature = TypeSignature::FromLinks(
      {TypedLink::Out(manages, firm), TypedLink::OutAtomic(name)});
  p.type(firm).signature = TypeSignature::FromLinks(
      {TypedLink::Out(managed, person), TypedLink::OutAtomic(name)});
  return p;
}

TEST(TypingProgramTest, BasicAccessors) {
  graph::DataGraph g = test::MakeFigure2Database();
  TypingProgram p = MakeFigure2Program(&g);
  EXPECT_EQ(p.NumTypes(), 2u);
  EXPECT_EQ(p.FindType("person"), 0);
  EXPECT_EQ(p.FindType("firm"), 1);
  EXPECT_EQ(p.FindType("nope"), kInvalidType);
  EXPECT_EQ(p.TotalTypedLinks(), 4u);
  EXPECT_EQ(p.NumDistinctTypedLinks(), 3u);  // ->name^0 shared
  ASSERT_OK(p.Validate());
}

TEST(TypingProgramTest, ValidateRejectsBadTargets) {
  graph::LabelInterner labels;
  graph::LabelId a = labels.Intern("a");
  TypingProgram p;
  p.AddType("t", TypeSignature::FromLinks({TypedLink::Out(a, 7)}));
  EXPECT_FALSE(p.Validate().ok());

  TypingProgram p2;
  p2.AddType("t", TypeSignature::FromLinks(
                      {TypedLink{Direction::kIncoming, a, kAtomicType}}));
  EXPECT_FALSE(p2.Validate().ok());
}

TEST(TypingProgramTest, ToStringMatchesPaperStyle) {
  graph::DataGraph g = test::MakeFigure2Database();
  TypingProgram p = MakeFigure2Program(&g);
  std::string s = p.ToString(g.labels());
  EXPECT_NE(s.find("person : 1 ="), std::string::npos);
  EXPECT_NE(s.find("->is-manager-of^2"), std::string::npos);
  EXPECT_NE(s.find("->name^0"), std::string::npos);
}

TEST(TypingProgramTest, ToDatalogEvaluatesIdentically) {
  graph::DataGraph g = test::MakeFigure2Database();
  TypingProgram p = MakeFigure2Program(&g);

  ASSERT_OK_AND_ASSIGN(Extents fast, ComputeGfp(p, g));
  ASSERT_OK_AND_ASSIGN(datalog::Interpretation slow,
                       datalog::Evaluate(p.ToDatalog(), g));
  ASSERT_EQ(fast.per_type.size(), slow.extents.size());
  for (size_t t = 0; t < fast.per_type.size(); ++t) {
    EXPECT_EQ(fast.per_type[t], slow.extents[t]) << "type " << t;
  }
  // And the extents are the paper's: person={g,j}, firm={m,a}.
  EXPECT_EQ(fast.per_type[0].Count(), 2u);
  EXPECT_TRUE(fast.Contains(0, 0));  // g
  EXPECT_TRUE(fast.Contains(0, 1));  // j
  EXPECT_EQ(fast.per_type[1].Count(), 2u);
  EXPECT_TRUE(fast.Contains(1, 2));  // m
  EXPECT_TRUE(fast.Contains(1, 3));  // a
}

TEST(TypingProgramTest, FromDatalogRoundTrip) {
  graph::DataGraph g = test::MakeFigure2Database();
  TypingProgram p = MakeFigure2Program(&g);
  datalog::Program d = p.ToDatalog();
  ASSERT_OK_AND_ASSIGN(TypingProgram p2, TypingProgram::FromDatalog(d));
  EXPECT_EQ(p2.NumTypes(), p.NumTypes());
  for (size_t t = 0; t < p.NumTypes(); ++t) {
    EXPECT_EQ(p2.type(static_cast<TypeId>(t)).signature,
              p.type(static_cast<TypeId>(t)).signature);
    EXPECT_EQ(p2.type(static_cast<TypeId>(t)).name,
              p.type(static_cast<TypeId>(t)).name);
  }
}

TEST(TypingProgramTest, FromDatalogParsedText) {
  // A hand-written program in the restricted fragment lifts cleanly.
  graph::LabelInterner labels;
  ASSERT_OK_AND_ASSIGN(
      datalog::Program d,
      datalog::ParseProgram(
          "student(X) :- link(X, Y, advisor), prof(Y), link(X, Z, name), "
          "atomic(Z).\n"
          "prof(X) :- link(Y, X, advisor), student(Y).",
          &labels));
  ASSERT_OK_AND_ASSIGN(TypingProgram p, TypingProgram::FromDatalog(d));
  EXPECT_EQ(p.NumTypes(), 2u);
  TypeId student = p.FindType("student");
  TypeId prof = p.FindType("prof");
  EXPECT_EQ(p.type(student).signature.size(), 2u);
  EXPECT_TRUE(p.type(prof).signature.Contains(
      TypedLink::In(labels.Find("advisor"), student)));
}

TEST(TypingProgramTest, FromDatalogRejectsOutsideFragment) {
  graph::LabelInterner labels;
  // Two rules for one head.
  ASSERT_OK_AND_ASSIGN(
      datalog::Program two_rules,
      datalog::ParseProgram("t(X) :- atomic(X).\nt(X) :- link(X, Y, a), "
                            "atomic(Y).",
                            &labels));
  EXPECT_FALSE(TypingProgram::FromDatalog(two_rules).ok());

  // A body variable used by two link atoms (the paper's excluded
  // manager/managed-by example from §2).
  ASSERT_OK_AND_ASSIGN(
      datalog::Program shared_var,
      datalog::ParseProgram(
          "person(X) :- link(X, Y, m), firm(Y), link(Y, X, mb).\n"
          "firm(X) :- link(X, Z, name), atomic(Z).",
          &labels));
  EXPECT_FALSE(TypingProgram::FromDatalog(shared_var).ok());

  // Variable with a classifying atom but no link anchoring it to X.
  ASSERT_OK_AND_ASSIGN(
      datalog::Program floating,
      datalog::ParseProgram("t(X) :- atomic(Y).", &labels));
  EXPECT_FALSE(TypingProgram::FromDatalog(floating).ok());
}

TEST(GfpTest, PrefilterNeverDropsGfpMembers) {
  // Statistical check on random graphs: specialized GFP == generic
  // datalog GFP for arbitrary candidate-style typing programs.
  for (uint64_t seed : {1u, 2u, 3u}) {
    gen::RandomGraphOptions opt;
    opt.num_complex = 30;
    opt.num_atomic = 20;
    opt.num_edges = 70;
    opt.num_labels = 3;
    opt.seed = seed;
    graph::DataGraph g = gen::RandomGraph(opt);
    ASSERT_OK_AND_ASSIGN(PerfectTypingResult stage1,
                         PerfectTypingViaRefinement(g));
    ASSERT_OK_AND_ASSIGN(Extents fast, ComputeGfp(stage1.program, g));
    ASSERT_OK_AND_ASSIGN(datalog::Interpretation slow,
                         datalog::Evaluate(stage1.program.ToDatalog(), g));
    for (size_t t = 0; t < fast.per_type.size(); ++t) {
      EXPECT_EQ(fast.per_type[t], slow.extents[t])
          << "seed " << seed << " type " << t;
    }
  }
}

TEST(GfpTest, SatisfiesSignatureChecksWitnesses) {
  graph::DataGraph g = test::MakeFigure2Database();
  TypingProgram p = MakeFigure2Program(&g);
  ASSERT_OK_AND_ASSIGN(Extents m, ComputeGfp(p, g));
  EXPECT_TRUE(SatisfiesSignature(p.type(0).signature, g, m, 0));   // g
  EXPECT_FALSE(SatisfiesSignature(p.type(0).signature, g, m, 2));  // m
  // Empty signature is satisfied by anything.
  EXPECT_TRUE(SatisfiesSignature(TypeSignature(), g, m, 2));
}

TEST(GfpTest, StatsPopulated) {
  graph::DataGraph g = test::MakeFigure2Database();
  TypingProgram p = MakeFigure2Program(&g);
  GfpStats stats;
  ASSERT_OK_AND_ASSIGN(Extents m, ComputeGfp(p, g, &stats));
  (void)m;
  EXPECT_GT(stats.initial_candidates, 0u);
  EXPECT_GT(stats.rechecks, 0u);
}

}  // namespace
}  // namespace schemex::typing
