// Differential test: the production greedy clusterer (incremental
// best-candidate caches) against a deliberately naive reference
// implementation of the same §5 algorithm, written independently below.
// Any divergence in merge sequences or final programs is a bug in the
// optimization.

#include <gtest/gtest.h>

#include <limits>

#include "cluster/distance.h"
#include "cluster/greedy.h"
#include "gen/random_graph.h"
#include "tests/test_util.h"
#include "typing/perfect_typing.h"

namespace schemex::cluster {
namespace {

using typing::TypedLink;
using typing::TypeId;
using typing::TypeSignature;
using typing::TypingProgram;

/// Naive reference: full O(n^2) re-scan per step, transcribing the
/// paper's greedy directly.
struct ReferenceResult {
  std::vector<MergeStep> steps;
  std::vector<TypeId> cluster_of;  // stage-1 type -> cluster index/-2
};

ReferenceResult ReferenceGreedy(const TypingProgram& stage1,
                                const std::vector<uint32_t>& weights,
                                const ClusteringOptions& options) {
  const size_t n = stage1.NumTypes();
  std::vector<TypeSignature> sig(n);
  std::vector<double> weight(n);
  std::vector<bool> alive(n, true);
  std::vector<TypeId> cluster_of(n);
  for (size_t i = 0; i < n; ++i) {
    sig[i] = stage1.type(static_cast<TypeId>(i)).signature;
    weight[i] = weights[i];
    cluster_of[i] = static_cast<TypeId>(i);
  }
  const size_t big_l = stage1.NumDistinctTypedLinks();
  double empty_weight = 0.0;
  ReferenceResult result;
  size_t live = n;
  while (live > options.target_num_types) {
    double best_cost = std::numeric_limits<double>::infinity();
    TypeId bs = -1, bt = -1;
    size_t bd = 0;
    for (size_t s = 0; s < n; ++s) {
      if (!alive[s]) continue;
      for (size_t t = 0; t < n; ++t) {
        if (t == s || !alive[t]) continue;
        size_t d = SimpleDistance(sig[s], sig[t]);
        double cost =
            WeightedDistance(options.psi, weight[t], weight[s], d, big_l);
        if (cost < best_cost) {
          best_cost = cost;
          bs = static_cast<TypeId>(s);
          bt = static_cast<TypeId>(t);
          bd = d;
        }
      }
      if (options.enable_empty_type) {
        double cost = WeightedDistance(options.psi,
                                       std::max(empty_weight, 1.0),
                                       weight[s], sig[s].size(), big_l);
        if (cost < best_cost) {
          best_cost = cost;
          bs = static_cast<TypeId>(s);
          bt = kEmptyType;
          bd = sig[s].size();
        }
      }
    }
    if (bs < 0) break;
    alive[static_cast<size_t>(bs)] = false;
    for (TypeId& c : cluster_of) {
      if (c == bs) c = bt;
    }
    if (bt == kEmptyType) {
      empty_weight += weight[static_cast<size_t>(bs)];
      for (size_t i = 0; i < n; ++i) {
        if (!alive[i]) continue;
        TypeSignature next = sig[i];
        for (const TypedLink& l : sig[i].links()) {
          if (l.target == bs) next.Erase(l);
        }
        sig[i] = std::move(next);
      }
    } else {
      weight[static_cast<size_t>(bt)] += weight[static_cast<size_t>(bs)];
      for (size_t i = 0; i < n; ++i) {
        if (alive[i]) sig[i].RemapTarget(bs, bt);
      }
    }
    --live;
    result.steps.push_back(MergeStep{live, bs, bt, bd, best_cost});
  }
  result.cluster_of = cluster_of;
  return result;
}

class GreedyDifferential
    : public ::testing::TestWithParam<std::tuple<uint64_t, PsiKind, bool>> {};

TEST_P(GreedyDifferential, MatchesNaiveReference) {
  auto [seed, psi, empty] = GetParam();
  gen::RandomGraphOptions gopt;
  gopt.num_complex = 50;
  gopt.num_atomic = 30;
  gopt.num_edges = 110;
  gopt.num_labels = 4;
  gopt.seed = seed;
  graph::DataGraph g = gen::RandomGraph(gopt);
  auto stage1 = typing::PerfectTypingViaRefinement(g);
  ASSERT_TRUE(stage1.ok());
  if (stage1->program.NumTypes() < 5) GTEST_SKIP();

  ClusteringOptions opt;
  opt.psi = psi;
  opt.enable_empty_type = empty;
  opt.target_num_types = 3;

  ReferenceResult ref = ReferenceGreedy(stage1->program, stage1->weight, opt);
  auto fast = ClusterTypes(stage1->program, stage1->weight, opt);
  ASSERT_TRUE(fast.ok());

  ASSERT_EQ(fast->steps.size(), ref.steps.size());
  for (size_t i = 0; i < ref.steps.size(); ++i) {
    EXPECT_EQ(fast->steps[i].source, ref.steps[i].source) << "step " << i;
    EXPECT_EQ(fast->steps[i].dest, ref.steps[i].dest) << "step " << i;
    EXPECT_EQ(fast->steps[i].simple_d, ref.steps[i].simple_d) << "step " << i;
    EXPECT_DOUBLE_EQ(fast->steps[i].cost, ref.steps[i].cost) << "step " << i;
  }
  // Cluster partitions agree: same stage-1 types grouped together.
  for (size_t i = 0; i < ref.cluster_of.size(); ++i) {
    for (size_t j = i + 1; j < ref.cluster_of.size(); ++j) {
      bool ref_same = ref.cluster_of[i] == ref.cluster_of[j];
      bool fast_same = fast->final_map[i] == fast->final_map[j];
      EXPECT_EQ(ref_same, fast_same) << i << " vs " << j;
    }
    bool ref_empty = ref.cluster_of[i] == kEmptyType;
    bool fast_empty = fast->final_map[i] == kEmptyType;
    EXPECT_EQ(ref_empty, fast_empty) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GreedyDifferential,
    ::testing::Combine(::testing::Values(7u, 17u, 27u),
                       ::testing::Values(PsiKind::kSimpleD, PsiKind::kPsi1,
                                         PsiKind::kPsi2, PsiKind::kPsi3,
                                         PsiKind::kPsi4, PsiKind::kPsi5),
                       ::testing::Bool()),
    [](const ::testing::TestParamInfo<std::tuple<uint64_t, PsiKind, bool>>&
           info) {
      return "seed" + std::to_string(std::get<0>(info.param)) + "_" +
             std::string(PsiKindName(std::get<1>(info.param))) +
             (std::get<2>(info.param) ? "_empty" : "_noempty");
    });

}  // namespace
}  // namespace schemex::cluster
