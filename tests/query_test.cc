#include <gtest/gtest.h>

#include <algorithm>

#include "extract/extractor.h"
#include "gen/dbg.h"
#include "query/path_query.h"
#include "query/schema_guide.h"
#include "tests/test_util.h"
#include "typing/defect.h"
#include "typing/perfect_typing.h"

namespace schemex::query {
namespace {

TEST(ParsePathQueryTest, Steps) {
  ASSERT_OK_AND_ASSIGN(PathQuery q, ParsePathQuery("author.name"));
  ASSERT_EQ(q.steps.size(), 2u);
  EXPECT_EQ(q.steps[0].kind, PathStep::Kind::kLabel);
  EXPECT_EQ(q.steps[0].label, "author");

  ASSERT_OK_AND_ASSIGN(PathQuery q2, ParsePathQuery("*.%.name"));
  EXPECT_EQ(q2.steps[0].kind, PathStep::Kind::kAnyOne);
  EXPECT_EQ(q2.steps[1].kind, PathStep::Kind::kAnyStar);

  EXPECT_FALSE(ParsePathQuery("").ok());
  EXPECT_FALSE(ParsePathQuery("a..b").ok());
  EXPECT_FALSE(ParsePathQuery("  ").ok());
}

class Figure2Query : public ::testing::Test {
 protected:
  void SetUp() override { g_ = test::MakeFigure2Database(); }

  graph::ObjectId Obj(const char* name) {
    for (graph::ObjectId o = 0; o < g_.NumObjects(); ++o) {
      if (g_.Name(o) == name) return o;
    }
    return graph::kInvalidObject;
  }

  graph::DataGraph g_;
};

TEST_F(Figure2Query, SingleLabel) {
  ASSERT_OK_AND_ASSIGN(PathQuery q, ParsePathQuery("is-manager-of"));
  auto hits = EvaluatePathQuery(g_, q);
  EXPECT_EQ(hits,
            (std::vector<graph::ObjectId>{Obj("m"), Obj("a")}));
}

TEST_F(Figure2Query, TwoStepPath) {
  ASSERT_OK_AND_ASSIGN(PathQuery q, ParsePathQuery("is-manager-of.name"));
  auto hits = EvaluatePathQuery(g_, q);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(g_.Value(hits[0]), "Microsoft");
  EXPECT_EQ(g_.Value(hits[1]), "Apple");
}

TEST_F(Figure2Query, ExplicitStartSet) {
  ASSERT_OK_AND_ASSIGN(PathQuery q, ParsePathQuery("name"));
  auto hits = EvaluatePathQuery(g_, q, {Obj("g")});
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(g_.Value(hits[0]), "Gates");
}

TEST_F(Figure2Query, WildcardsAndClosure) {
  ASSERT_OK_AND_ASSIGN(PathQuery star, ParsePathQuery("*"));
  // One step of any label from anywhere: all objects with incoming edges.
  EXPECT_EQ(EvaluatePathQuery(g_, star).size(), 8u);

  ASSERT_OK_AND_ASSIGN(PathQuery closure, ParsePathQuery("%"));
  // Zero-or-more from every complex object: everything reachable
  // including the starts.
  EXPECT_EQ(EvaluatePathQuery(g_, closure).size(), 8u);

  ASSERT_OK_AND_ASSIGN(PathQuery combo, ParsePathQuery("%.name"));
  EXPECT_EQ(EvaluatePathQuery(g_, combo).size(), 4u);
}

TEST_F(Figure2Query, MissingLabelShortCircuits) {
  ASSERT_OK_AND_ASSIGN(PathQuery q, ParsePathQuery("nope.name"));
  QueryStats stats;
  EXPECT_TRUE(EvaluatePathQuery(g_, q, {}, &stats).empty());
}

TEST(SchemaGuideTest, PerfectTypingPruningIsExact) {
  // Zero-excess assignment => pruned evaluation returns exactly the
  // unpruned result, while visiting fewer objects.
  auto g = gen::MakeDbgDataset();
  ASSERT_OK_AND_ASSIGN(typing::PerfectTypingResult stage1,
                       typing::PerfectTypingViaGfp(*g));
  // Assignment = homes (complete, zero excess by construction).
  typing::TypeAssignment tau(g->NumObjects());
  for (size_t o = 0; o < stage1.home.size(); ++o) {
    if (stage1.home[o] != typing::kInvalidType) {
      tau.Assign(static_cast<graph::ObjectId>(o), stage1.home[o]);
    }
  }
  ASSERT_EQ(
      typing::ComputeExcess(stage1.program, *g, tau, false, nullptr), 0u);

  SchemaGuide guide(stage1.program, tau);
  for (const char* text : {"author.name", "advisor.email", "birthday.month",
                           "project_member.name", "author.%"}) {
    ASSERT_OK_AND_ASSIGN(PathQuery q, ParsePathQuery(text));
    QueryStats full_stats, pruned_stats;
    auto full = EvaluatePathQuery(*g, q, {}, &full_stats);
    auto pruned = guide.Evaluate(*g, q, &pruned_stats);
    EXPECT_EQ(full, pruned) << text;
    EXPECT_LE(pruned_stats.objects_visited, full_stats.objects_visited)
        << text;
  }
}

TEST(SchemaGuideTest, StartTypesFollowSchemaEdges) {
  // person = {->pet^dog}; dog = {->name^0}: "pet.name" starts at person
  // only.
  graph::LabelInterner labels;
  graph::DataGraph g;
  graph::ObjectId p = g.AddComplex("p");
  graph::ObjectId d = g.AddComplex("d");
  graph::ObjectId v = g.AddAtomic("rex");
  (void)g.AddEdge(p, d, "pet");
  (void)g.AddEdge(d, v, "name");

  typing::TypingProgram program;
  typing::TypeId dog = program.AddType("dog", {});
  typing::TypeId person = program.AddType("person", {});
  program.type(person).signature = typing::TypeSignature::FromLinks(
      {typing::TypedLink::Out(g.labels().Find("pet"), dog)});
  program.type(dog).signature = typing::TypeSignature::FromLinks(
      {typing::TypedLink::OutAtomic(g.labels().Find("name"))});
  typing::TypeAssignment tau(g.NumObjects());
  tau.Assign(p, person);
  tau.Assign(d, dog);

  SchemaGuide guide(program, tau);
  ASSERT_OK_AND_ASSIGN(PathQuery q, ParsePathQuery("pet.name"));
  EXPECT_EQ(guide.StartTypes(g, q), (std::vector<typing::TypeId>{person}));
  EXPECT_EQ(guide.StartCandidates(g, q),
            (std::vector<graph::ObjectId>{p}));
  auto hits = guide.Evaluate(g, q);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(g.Value(hits[0]), "rex");

  // Incoming typed links also induce schema edges: if dog instead
  // declares <-pet^person, the same start types result.
  typing::TypingProgram program2;
  typing::TypeId dog2 = program2.AddType("dog", {});
  typing::TypeId person2 = program2.AddType("person", {});
  program2.type(dog2).signature = typing::TypeSignature::FromLinks(
      {typing::TypedLink::In(g.labels().Find("pet"), person2),
       typing::TypedLink::OutAtomic(g.labels().Find("name"))});
  SchemaGuide guide2(program2, tau);
  auto starts = guide2.StartTypes(g, q);
  EXPECT_EQ(starts, (std::vector<typing::TypeId>{person2}));
}

TEST(SchemaGuideTest, ApproximateSchemaMayUnderReport) {
  // An object with an EXCESS edge (not described by its type) reaches a
  // result the schema cannot see — documenting the guide's contract.
  graph::DataGraph g;
  graph::ObjectId a = g.AddComplex("a");
  graph::ObjectId b = g.AddComplex("b");
  graph::ObjectId v = g.AddAtomic("x");
  (void)g.AddEdge(a, b, "secret");  // excess: no rule mentions it
  (void)g.AddEdge(b, v, "name");

  typing::TypingProgram program;
  typing::TypeId tb = program.AddType(
      "tb", typing::TypeSignature::FromLinks(
                {typing::TypedLink::OutAtomic(g.labels().Find("name"))}));
  typing::TypeId ta = program.AddType("ta", {});
  typing::TypeAssignment tau(g.NumObjects());
  tau.Assign(a, ta);
  tau.Assign(b, tb);

  SchemaGuide guide(program, tau);
  ASSERT_OK_AND_ASSIGN(PathQuery q, ParsePathQuery("secret.name"));
  auto full = EvaluatePathQuery(g, q);
  EXPECT_EQ(full.size(), 1u);
  EXPECT_TRUE(guide.Evaluate(g, q).empty());  // pruned away — as specified
}

TEST(SchemaGuideTest, AnyStarClosureOverSchema) {
  auto g = gen::MakeDbgDataset();
  extract::ExtractorOptions opt;
  opt.target_num_types = 6;
  auto r = extract::SchemaExtractor(opt).Run(*g);
  ASSERT_TRUE(r.ok());
  SchemaGuide guide(r->final_program, r->recast.assignment);
  ASSERT_OK_AND_ASSIGN(PathQuery q, ParsePathQuery("%.postscript"));
  // Every type that can reach publication via any path qualifies; at
  // minimum the publication type itself.
  EXPECT_FALSE(guide.StartTypes(*g, q).empty());
}

TEST(ValueFilterTest, ParseForms) {
  ASSERT_OK_AND_ASSIGN(PathQuery q,
                       ParsePathQuery(R"([name="Gates"].email)"));
  ASSERT_EQ(q.steps.size(), 2u);
  EXPECT_EQ(q.steps[0].kind, PathStep::Kind::kFilterOnly);
  ASSERT_TRUE(q.steps[0].filter.has_value());
  EXPECT_EQ(q.steps[0].filter->attr, "name");
  EXPECT_EQ(q.steps[0].filter->value, "Gates");
  EXPECT_EQ(q.steps[1].label, "email");

  ASSERT_OK_AND_ASSIGN(PathQuery q2,
                       ParsePathQuery(R"(member[dept="c.s"].phone)"));
  ASSERT_EQ(q2.steps.size(), 2u);
  EXPECT_EQ(q2.steps[0].kind, PathStep::Kind::kLabel);
  EXPECT_EQ(q2.steps[0].label, "member");
  EXPECT_EQ(q2.steps[0].filter->value, "c.s");  // dot inside filter ok

  EXPECT_FALSE(ParsePathQuery("a[b]").ok());           // no '='
  EXPECT_FALSE(ParsePathQuery("a[b=c]").ok());         // unquoted value
  EXPECT_FALSE(ParsePathQuery("a[b=\"c]").ok());        // unterminated
  EXPECT_FALSE(ParsePathQuery("a[x[y]]").ok());        // nested
  EXPECT_FALSE(ParsePathQuery("a]b").ok());            // stray
}

TEST(ValueFilterTest, FiltersTraversalResults) {
  graph::DataGraph g = test::MakeFigure2Database();
  // Firms managed by someone named Gates: start filter + traversal.
  ASSERT_OK_AND_ASSIGN(PathQuery q,
                       ParsePathQuery(R"([name="Gates"].is-manager-of)"));
  auto hits = EvaluatePathQuery(g, q);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(g.Name(hits[0]), "m");

  // Post-traversal filter: manager targets whose name is Apple.
  ASSERT_OK_AND_ASSIGN(PathQuery q2,
                       ParsePathQuery(R"(is-manager-of[name="Apple"])"));
  auto hits2 = EvaluatePathQuery(g, q2);
  ASSERT_EQ(hits2.size(), 1u);
  EXPECT_EQ(g.Name(hits2[0]), "a");

  // No match: filter drains the frontier.
  ASSERT_OK_AND_ASSIGN(PathQuery q3,
                       ParsePathQuery(R"([name="Nobody"].is-manager-of)"));
  EXPECT_TRUE(EvaluatePathQuery(g, q3).empty());

  // Unknown attribute label: everything filtered out.
  ASSERT_OK_AND_ASSIGN(PathQuery q4, ParsePathQuery(R"([zzz="x"])"));
  EXPECT_TRUE(EvaluatePathQuery(g, q4).empty());
}

TEST(ValueFilterTest, SchemaGuideIgnoresFiltersSoundly) {
  auto g = gen::MakeDbgDataset();
  ASSERT_OK_AND_ASSIGN(typing::PerfectTypingResult stage1,
                       typing::PerfectTypingViaGfp(*g));
  typing::TypeAssignment tau(g->NumObjects());
  for (size_t o = 0; o < stage1.home.size(); ++o) {
    if (stage1.home[o] != typing::kInvalidType) {
      tau.Assign(static_cast<graph::ObjectId>(o), stage1.home[o]);
    }
  }
  SchemaGuide guide(stage1.program, tau);
  // Filtered query under zero-excess typing: still exact.
  ASSERT_OK_AND_ASSIGN(PathQuery q,
                       ParsePathQuery(R"(author[name="x"].%)"));
  auto full = EvaluatePathQuery(*g, q);
  auto pruned = guide.Evaluate(*g, q);
  EXPECT_EQ(full, pruned);
}

}  // namespace
}  // namespace schemex::query
