#include <gtest/gtest.h>

#include "datalog/evaluator.h"
#include "datalog/parser.h"
#include "gen/random_graph.h"
#include "tests/test_util.h"

namespace schemex::datalog {
namespace {

EvalOptions SemiNaive() {
  EvalOptions o;
  o.fixpoint = FixpointKind::kLeast;
  o.strategy = Strategy::kSemiNaive;
  return o;
}

EvalOptions NaiveLfp() {
  EvalOptions o;
  o.fixpoint = FixpointKind::kLeast;
  return o;
}

TEST(SemiNaiveTest, TransitiveReachability) {
  // reach = base case (tagged start) + recursive step along `next`.
  graph::GraphBuilder b;
  ASSERT_OK(b.Atomic("flag", "1"));
  ASSERT_OK(b.Edge("s", "start", "flag"));
  ASSERT_OK(b.Edge("s", "next", "a"));
  ASSERT_OK(b.Edge("a", "next", "c"));
  ASSERT_OK(b.Edge("c", "next", "d"));
  ASSERT_OK(b.Edge("z", "next", "q"));  // disconnected from s
  util::Status st;
  graph::DataGraph g = std::move(b).Build(&st);
  ASSERT_OK(st);
  // NOTE: reach(X) :- link(Y, X, next), reach(Y) — forward closure.
  ASSERT_OK_AND_ASSIGN(
      Program p,
      ParseProgram("reach(X) :- link(X, Y, start), atomic(Y).\n"
                   "reach(X) :- link(Y, X, next), reach(Y).",
                   &g.labels()));
  EvalStats stats;
  ASSERT_OK_AND_ASSIGN(Interpretation m, Evaluate(p, g, SemiNaive(), &stats));
  EXPECT_EQ(m.extents[0].Count(), 4u);  // s, a, c, d
  EXPECT_GT(stats.delta_firings, 0u);

  ASSERT_OK_AND_ASSIGN(Interpretation naive, Evaluate(p, g, NaiveLfp()));
  EXPECT_EQ(m, naive);
}

TEST(SemiNaiveTest, MatchesNaiveOnRandomPrograms) {
  // Property: semi-naive LFP == naive LFP on perfect-typing programs
  // (mutually recursive, both link directions) over random graphs.
  for (uint64_t seed : {3u, 13u, 23u, 33u}) {
    gen::RandomGraphOptions opt;
    opt.num_complex = 40;
    opt.num_atomic = 25;
    opt.num_edges = 100;
    opt.num_labels = 4;
    opt.seed = seed;
    graph::DataGraph g = gen::RandomGraph(opt);
    // Non-recursive layered program: base facts then derived layers (the
    // LFP-meaningful shape; pure typing programs have empty LFPs).
    ASSERT_OK_AND_ASSIGN(
        Program p,
        ParseProgram(
            "leafy(X) :- link(X, Y, l0), atomic(Y).\n"
            "linker(X) :- link(X, Y, l1), leafy(Y).\n"
            "linked(X) :- link(Y, X, l2), linker(Y).\n"
            "hub(X) :- link(X, Y, l3), linked(Y), link(X, Z, l0), "
            "atomic(Z).",
            &g.labels()));
    ASSERT_OK_AND_ASSIGN(Interpretation fast, Evaluate(p, g, SemiNaive()));
    ASSERT_OK_AND_ASSIGN(Interpretation slow, Evaluate(p, g, NaiveLfp()));
    EXPECT_EQ(fast, slow) << "seed " << seed;
  }
}

TEST(SemiNaiveTest, RecursiveProgramsWithEmptyLfp) {
  // Mutually recursive with no base case: LFP empty under both
  // strategies (the paper's Figure 2 observation).
  graph::DataGraph g = test::MakeFigure2Database();
  ASSERT_OK_AND_ASSIGN(
      Program p,
      ParseProgram("person(X) :- link(X, Y, \"is-manager-of\"), firm(Y).\n"
                   "firm(X) :- link(X, Y, \"is-managed-by\"), person(Y).",
                   &g.labels()));
  ASSERT_OK_AND_ASSIGN(Interpretation m, Evaluate(p, g, SemiNaive()));
  EXPECT_TRUE(m.extents[0].None());
  EXPECT_TRUE(m.extents[1].None());
}

TEST(SemiNaiveTest, GfpRequestFallsBackToNaive) {
  graph::DataGraph g = test::MakeFigure2Database();
  ASSERT_OK_AND_ASSIGN(
      Program p,
      ParseProgram("named(X) :- link(X, Y, name), atomic(Y).", &g.labels()));
  EvalOptions opt;
  opt.strategy = Strategy::kSemiNaive;  // fixpoint stays kGreatest
  ASSERT_OK_AND_ASSIGN(Interpretation m, Evaluate(p, g, opt));
  EXPECT_EQ(m.extents[0].Count(), 4u);
}

TEST(SemiNaiveTest, DeltaFiringsFarBelowNaiveChecks) {
  // On a long chain, naive LFP re-checks every object every round
  // (O(n^2) probes); semi-naive only touches the frontier.
  graph::GraphBuilder b;
  ASSERT_OK(b.Atomic("flag", "1"));
  ASSERT_OK(b.Edge("n0", "start", "flag"));
  for (int i = 0; i < 60; ++i) {
    ASSERT_OK(b.Edge("n" + std::to_string(i), "next",
                     "n" + std::to_string(i + 1)));
  }
  util::Status st;
  graph::DataGraph g = std::move(b).Build(&st);
  ASSERT_OK(st);
  ASSERT_OK_AND_ASSIGN(
      Program p,
      ParseProgram("reach(X) :- link(X, Y, start), atomic(Y).\n"
                   "reach(X) :- link(Y, X, next), reach(Y).",
                   &g.labels()));
  EvalStats fast_stats, slow_stats;
  ASSERT_OK_AND_ASSIGN(Interpretation fast,
                       Evaluate(p, g, SemiNaive(), &fast_stats));
  ASSERT_OK_AND_ASSIGN(Interpretation slow,
                       Evaluate(p, g, NaiveLfp(), &slow_stats));
  EXPECT_EQ(fast, slow);
  EXPECT_EQ(fast.extents[0].Count(), 61u);
  // Naive: ~61 rounds x 61 objects x 2 rules; semi-naive: ~61 firings +
  // one full scan.
  EXPECT_LT(fast_stats.delta_firings + fast_stats.rule_checks,
            slow_stats.rule_checks / 10);
}

TEST(SemiNaiveTest, HeadUnconstrainedRule) {
  // q(X) :- link(Y, Z, l), p(Y): the head variable is unconstrained;
  // once any witness exists, EVERY complex object derives q.
  graph::GraphBuilder b;
  ASSERT_OK(b.Atomic("v", "1"));
  ASSERT_OK(b.Edge("a", "base", "v"));
  ASSERT_OK(b.Edge("a", "l", "c"));
  ASSERT_OK(b.Complex("idle"));
  util::Status st;
  graph::DataGraph g = std::move(b).Build(&st);
  ASSERT_OK(st);
  ASSERT_OK_AND_ASSIGN(
      Program p,
      ParseProgram("p(X) :- link(X, Y, base), atomic(Y).\n"
                   "q(X) :- link(Y, Z, l), p(Y).",
                   &g.labels()));
  ASSERT_OK_AND_ASSIGN(Interpretation fast, Evaluate(p, g, SemiNaive()));
  ASSERT_OK_AND_ASSIGN(Interpretation slow, Evaluate(p, g, NaiveLfp()));
  EXPECT_EQ(fast, slow);
  EXPECT_EQ(fast.extents[p.FindPred("q")].Count(), g.NumComplexObjects());
}

}  // namespace
}  // namespace schemex::datalog
