// Corruption fuzzing for the snapshot loader: every truncation and every
// single-bit flip of a valid snapshot must either be rejected with a
// structured error or — when the flip lands in a byte the chosen
// MapOptions legitimately do not inspect — produce a graph that still
// passes full validation. Never a crash (ASan/UBSan lanes run this
// suite), never a silently wrong graph.

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "graph/graph_builder.h"
#include "snapshot/format.h"
#include "snapshot/snapshot.h"
#include "tests/test_util.h"
#include "util/crc32.h"
#include "util/string_util.h"

namespace schemex::snapshot {
namespace {

namespace fs = std::filesystem;

class SnapshotCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("schemex_corrupt_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);

    graph::GraphBuilder b;
    for (int i = 0; i < 12; ++i) {
      EXPECT_OK(b.Complex(util::StringPrintf("c%d", i)));
      EXPECT_OK(b.Atomic(util::StringPrintf("a%d", i),
                         util::StringPrintf("value-%d", i)));
    }
    for (int i = 0; i < 12; ++i) {
      EXPECT_OK(b.Edge(util::StringPrintf("c%d", i), "next",
                       util::StringPrintf("c%d", (i + 1) % 12)));
      EXPECT_OK(b.Edge(util::StringPrintf("c%d", i), "value",
                       util::StringPrintf("a%d", i)));
    }
    util::Status st;
    graph_ = graph::Freeze(std::move(b).Build(&st));
    EXPECT_OK(st);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string WriteValid(bool compact) {
    std::string path = (dir_ / (compact ? "c.bin" : "r.bin")).string();
    WriteOptions opt;
    opt.compact = compact;
    EXPECT_OK(Write(*graph_, path, opt));
    return path;
  }

  static std::string Slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
  }

  std::string Spit(const std::string& bytes) {
    std::string path = (dir_ / "mutated.bin").string();
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << bytes;
    out.close();
    return path;
  }

  fs::path dir_;
  std::shared_ptr<const graph::FrozenGraph> graph_;
};

TEST_F(SnapshotCorruptionTest, EveryTruncationRejected) {
  for (bool compact : {false, true}) {
    std::string bytes = Slurp(WriteValid(compact));
    ASSERT_GT(bytes.size(), 0u);
    // Every prefix length: dense below the header + section table so the
    // layout parser sees all its partial shapes, sparse in the payload.
    for (size_t len = 0; len < bytes.size();
         len += (len < 1024 ? 1 : 977)) {
      auto g = Map(Spit(bytes.substr(0, len)));
      EXPECT_FALSE(g.ok()) << "compact=" << compact << " len=" << len;
    }
  }
}

TEST_F(SnapshotCorruptionTest, EveryBitFlipRejectedOrHarmless) {
  for (bool compact : {false, true}) {
    const std::string bytes = Slurp(WriteValid(compact));
    size_t accepted = 0;
    for (size_t off = 0; off < bytes.size(); ++off) {
      std::string mutated = bytes;
      mutated[off] = static_cast<char>(mutated[off] ^ (1u << (off % 8)));
      auto g = Map(Spit(mutated));
      if (!g.ok()) continue;  // structured rejection: good
      // With CRC verification on, a flip can only be accepted in bytes
      // the format genuinely ignores (section padding, reserved fields).
      // The graph must then still be exactly intact.
      ++accepted;
      util::Status valid = (*g)->Validate();
      EXPECT_TRUE(valid.ok()) << valid.ToString() << " compact=" << compact
                              << " offset=" << off;
      EXPECT_EQ((*g)->NumEdges(), graph_->NumEdges()) << "offset=" << off;
    }
    // CRC coverage is tight: the only bytes a flip may slip through are
    // the inter-section alignment padding (at most 7 per section).
    EXPECT_LE(accepted, 9u * 7u)
        << "compact=" << compact
        << ": CRCs are ignoring too much of the file";
  }
}

TEST_F(SnapshotCorruptionTest, PayloadFlipsCaughtEvenWithoutCrc) {
  // verify_crc=false is the out-of-core mode: structural validation must
  // still bound every offset and id, so a flipped payload byte may yield
  // a wrong-but-in-bounds graph, never a crash or an OOB read. (ASan is
  // the assertion here; the Map/Validate calls just have to terminate.)
  MapOptions opt;
  opt.verify_crc = false;
  const std::string bytes = Slurp(WriteValid(false));
  for (size_t off = 0; off < bytes.size(); off += 3) {
    std::string mutated = bytes;
    mutated[off] = static_cast<char>(mutated[off] ^ 0x80);
    auto g = Map(Spit(mutated), opt);
    if (g.ok()) {
      auto st = (*g)->Validate();  // outcome irrelevant; must not crash
      (void)st.ok();
    }
  }
}

TEST_F(SnapshotCorruptionTest, StructuredErrorsForHeaderFields) {
  const std::string bytes = Slurp(WriteValid(false));

  auto expect_error = [&](std::string mutated, const char* needle) {
    auto g = Map(Spit(mutated));
    ASSERT_FALSE(g.ok()) << needle;
    EXPECT_EQ(g.status().code(), util::StatusCode::kInvalidArgument)
        << needle;
    EXPECT_NE(g.status().message().find(needle), std::string::npos)
        << "wanted \"" << needle << "\" in: " << g.status().ToString();
  };

  {  // Bad magic.
    std::string m = bytes;
    m[0] = 'X';
    expect_error(m, "magic");
  }
  {  // Unsupported version (header CRC recomputed so it gets that far).
    Header h;
    std::memcpy(&h, bytes.data(), sizeof(Header));
    h.version = 99;
    h.header_crc = util::Crc32(&h, offsetof(Header, header_crc));
    std::string m = bytes;
    std::memcpy(m.data(), &h, sizeof(Header));
    expect_error(m, "version");
  }
  {  // Foreign endianness.
    Header h;
    std::memcpy(&h, bytes.data(), sizeof(Header));
    h.endian = 0x04030201;
    h.header_crc = util::Crc32(&h, offsetof(Header, header_crc));
    std::string m = bytes;
    std::memcpy(m.data(), &h, sizeof(Header));
    expect_error(m, "endian");
  }
  {  // Header CRC break.
    std::string m = bytes;
    m[60] = static_cast<char>(m[60] ^ 0xff);  // header_crc bytes
    expect_error(m, "header CRC");
  }
  {  // Section CRC break: flip one payload byte far from the table.
    std::string m = bytes;
    m[m.size() - 1] = static_cast<char>(m[m.size() - 1] ^ 0x01);
    expect_error(m, "CRC");
  }
}

TEST_F(SnapshotCorruptionTest, CompactVarintCorruptionRejected) {
  const std::string bytes = Slurp(WriteValid(true));
  // Saturate varint continuation bits across the encoded edge sections:
  // decoding must fail cleanly (overlong varint, value overflow, or
  // count mismatch), whatever byte the 0x80 lands on. CRC is off so the
  // decoder itself is what's under test.
  MapOptions opt;
  opt.verify_crc = false;
  size_t payload_start = sizeof(Header) + 9 * sizeof(SectionEntry);
  for (size_t off = payload_start; off < bytes.size(); ++off) {
    std::string mutated = bytes;
    mutated[off] = static_cast<char>(mutated[off] | 0x80);
    auto g = Map(Spit(mutated), opt);
    if (g.ok()) {
      auto st = (*g)->Validate();
      (void)st.ok();  // must not crash; correctness handled by CRC mode
    }
  }
}

TEST_F(SnapshotCorruptionTest, NotASnapshotAtAll) {
  EXPECT_FALSE(Map(Spit("")).ok());
  EXPECT_FALSE(Map(Spit("hello world")).ok());
  EXPECT_FALSE(Map((dir_ / "missing.bin").string()).ok());
  std::string zeros(4096, '\0');
  EXPECT_FALSE(Map(Spit(zeros)).ok());
}

}  // namespace
}  // namespace schemex::snapshot
