#ifndef SCHEMEX_TESTS_TEST_UTIL_H_
#define SCHEMEX_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include "graph/data_graph.h"
#include "graph/graph_builder.h"
#include "util/status.h"
#include "util/statusor.h"

#define ASSERT_OK(expr)                                  \
  do {                                                   \
    ::schemex::util::Status _st = (expr);                \
    ASSERT_TRUE(_st.ok()) << _st.ToString();             \
  } while (0)

#define EXPECT_OK(expr)                                  \
  do {                                                   \
    ::schemex::util::Status _st = (expr);                \
    EXPECT_TRUE(_st.ok()) << _st.ToString();             \
  } while (0)

#define SCHEMEX_TEST_CONCAT_INNER(a, b) a##b
#define SCHEMEX_TEST_CONCAT(a, b) SCHEMEX_TEST_CONCAT_INNER(a, b)
#define ASSERT_OK_AND_ASSIGN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                              \
  ASSERT_TRUE(tmp.ok()) << tmp.status().ToString(); \
  lhs = std::move(tmp).value()
#define ASSERT_OK_AND_ASSIGN(lhs, expr)                                \
  ASSERT_OK_AND_ASSIGN_IMPL(SCHEMEX_TEST_CONCAT(_sor_, __LINE__), lhs, \
                            expr)

namespace schemex::test {

/// The paper's Figure 2 database: Gates manages Microsoft, Jobs manages
/// Apple, everyone has a name.
inline graph::DataGraph MakeFigure2Database() {
  graph::GraphBuilder b;
  EXPECT_OK(b.Complex("g"));
  EXPECT_OK(b.Complex("j"));
  EXPECT_OK(b.Complex("m"));
  EXPECT_OK(b.Complex("a"));
  EXPECT_OK(b.Atomic("gn", "Gates"));
  EXPECT_OK(b.Atomic("jn", "Jobs"));
  EXPECT_OK(b.Atomic("mn", "Microsoft"));
  EXPECT_OK(b.Atomic("an", "Apple"));
  EXPECT_OK(b.Edge("g", "is-manager-of", "m"));
  EXPECT_OK(b.Edge("j", "is-manager-of", "a"));
  EXPECT_OK(b.Edge("m", "is-managed-by", "g"));
  EXPECT_OK(b.Edge("a", "is-managed-by", "j"));
  EXPECT_OK(b.Edge("g", "name", "gn"));
  EXPECT_OK(b.Edge("j", "name", "jn"));
  EXPECT_OK(b.Edge("m", "name", "mn"));
  EXPECT_OK(b.Edge("a", "name", "an"));
  util::Status st;
  graph::DataGraph g = std::move(b).Build(&st);
  EXPECT_OK(st);
  return g;
}

/// The paper's Figure 4 database (Example 4.2): o1 -a-> {o2,o3,o4};
/// o2 -b-> o5, o3 -b-> o6, o4 -b-> o6, o4 -c-> o7; o5..o7 atomic.
inline graph::DataGraph MakeFigure4Database() {
  graph::GraphBuilder b;
  for (const char* n : {"o1", "o2", "o3", "o4"}) EXPECT_OK(b.Complex(n));
  EXPECT_OK(b.Atomic("o5", "v5"));
  EXPECT_OK(b.Atomic("o6", "v6"));
  EXPECT_OK(b.Atomic("o7", "v7"));
  EXPECT_OK(b.Edge("o1", "a", "o2"));
  EXPECT_OK(b.Edge("o1", "a", "o3"));
  EXPECT_OK(b.Edge("o1", "a", "o4"));
  EXPECT_OK(b.Edge("o2", "b", "o5"));
  EXPECT_OK(b.Edge("o3", "b", "o6"));
  EXPECT_OK(b.Edge("o4", "b", "o6"));
  EXPECT_OK(b.Edge("o4", "c", "o7"));
  util::Status st;
  graph::DataGraph g = std::move(b).Build(&st);
  EXPECT_OK(st);
  return g;
}

/// The paper's Figure 5 database (Example 4.3): soccer star o1, movie
/// star o3, and o2 who is both.
inline graph::DataGraph MakeFigure5Database() {
  graph::GraphBuilder b;
  for (const char* n : {"o1", "o2", "o3"}) EXPECT_OK(b.Complex(n));
  EXPECT_OK(b.Atomic("n1", "Scholes"));
  EXPECT_OK(b.Atomic("c1", "England"));
  EXPECT_OK(b.Atomic("t1", "Man Utd"));
  EXPECT_OK(b.Atomic("n2", "Cantona"));
  EXPECT_OK(b.Atomic("c2", "France"));
  EXPECT_OK(b.Atomic("t2", "Man Utd"));
  EXPECT_OK(b.Atomic("m2", "Le Bonheur"));
  EXPECT_OK(b.Atomic("n3", "Binoche"));
  EXPECT_OK(b.Atomic("c3", "France"));
  EXPECT_OK(b.Atomic("m3a", "Bleu"));
  EXPECT_OK(b.Atomic("m3b", "Damage"));
  EXPECT_OK(b.Edge("o1", "name", "n1"));
  EXPECT_OK(b.Edge("o1", "country", "c1"));
  EXPECT_OK(b.Edge("o1", "team", "t1"));
  EXPECT_OK(b.Edge("o2", "name", "n2"));
  EXPECT_OK(b.Edge("o2", "country", "c2"));
  EXPECT_OK(b.Edge("o2", "team", "t2"));
  EXPECT_OK(b.Edge("o2", "movie", "m2"));
  EXPECT_OK(b.Edge("o3", "name", "n3"));
  EXPECT_OK(b.Edge("o3", "country", "c3"));
  EXPECT_OK(b.Edge("o3", "movie", "m3a"));
  EXPECT_OK(b.Edge("o3", "movie", "m3b"));
  util::Status st;
  graph::DataGraph g = std::move(b).Build(&st);
  EXPECT_OK(st);
  return g;
}

/// The database of Example 2.2 (Figure 3): o1 -a-> o2; o2,o3,o4 carry
/// attribute edges to atomics: o2 {b,c}, o3 {b,d}, o4 {b,c,d}.
inline graph::DataGraph MakeExample22Database() {
  graph::GraphBuilder b;
  for (const char* n : {"o1", "o2", "o3", "o4"}) EXPECT_OK(b.Complex(n));
  int atom = 0;
  auto attach = [&](const char* from, const char* label) {
    std::string name = "x" + std::to_string(atom++);
    EXPECT_OK(b.Atomic(name, "v"));
    EXPECT_OK(b.Edge(from, label, name));
  };
  EXPECT_OK(b.Edge("o1", "a", "o2"));
  attach("o2", "b");
  attach("o2", "c");
  attach("o3", "b");
  attach("o3", "d");
  attach("o4", "b");
  attach("o4", "c");
  attach("o4", "d");
  util::Status st;
  graph::DataGraph g = std::move(b).Build(&st);
  EXPECT_OK(st);
  return g;
}

}  // namespace schemex::test

#endif  // SCHEMEX_TESTS_TEST_UTIL_H_
