#include <gtest/gtest.h>

#include "tests/test_util.h"
#include "typing/atomic_sorts.h"
#include "typing/perfect_typing.h"

namespace schemex::typing {
namespace {

TEST(ClassifyValueTest, BuiltInSorts) {
  EXPECT_EQ(ClassifyValue("42"), AtomicSort::kInt);
  EXPECT_EQ(ClassifyValue("-7"), AtomicSort::kInt);
  EXPECT_EQ(ClassifyValue("+13"), AtomicSort::kInt);
  EXPECT_EQ(ClassifyValue("3.14"), AtomicSort::kReal);
  EXPECT_EQ(ClassifyValue("1e9"), AtomicSort::kReal);
  EXPECT_EQ(ClassifyValue("true"), AtomicSort::kBool);
  EXPECT_EQ(ClassifyValue("false"), AtomicSort::kBool);
  EXPECT_EQ(ClassifyValue("2026-07-06"), AtomicSort::kDate);
  EXPECT_EQ(ClassifyValue("https://db.stanford.edu"), AtomicSort::kUrl);
  EXPECT_EQ(ClassifyValue("svn@cs.stanford.edu"), AtomicSort::kEmail);
  EXPECT_EQ(ClassifyValue("Gates"), AtomicSort::kString);
  EXPECT_EQ(ClassifyValue(""), AtomicSort::kString);
  EXPECT_EQ(ClassifyValue("12-34"), AtomicSort::kString);   // not a date
  EXPECT_EQ(ClassifyValue("a@b @c"), AtomicSort::kString);  // space
  EXPECT_EQ(ClassifyValue(" 42 "), AtomicSort::kInt);       // trimmed
}

TEST(ClassifyValueTest, NamesAreStable) {
  EXPECT_EQ(AtomicSortName(AtomicSort::kInt), "int");
  EXPECT_EQ(AtomicSortName(AtomicSort::kString), "string");
  EXPECT_EQ(DefaultSortClassifier("7"), "int");
}

TEST(RefineAtomicSortsTest, RelabelsOnlyAtomicEdges) {
  graph::GraphBuilder b;
  ASSERT_OK(b.Atomic("age_v", "33"));
  ASSERT_OK(b.Atomic("name_v", "Ada"));
  ASSERT_OK(b.Edge("p", "age", "age_v"));
  ASSERT_OK(b.Edge("p", "name", "name_v"));
  ASSERT_OK(b.Edge("p", "knows", "q"));
  util::Status st;
  graph::DataGraph g = std::move(b).Build(&st);
  ASSERT_OK(st);

  graph::DataGraph refined = RefineAtomicSorts(g);
  ASSERT_OK(refined.Validate());
  EXPECT_EQ(refined.NumObjects(), g.NumObjects());
  EXPECT_EQ(refined.NumEdges(), g.NumEdges());
  EXPECT_NE(refined.labels().Find("age@int"), graph::kInvalidLabel);
  EXPECT_NE(refined.labels().Find("name@string"), graph::kInvalidLabel);
  EXPECT_NE(refined.labels().Find("knows"), graph::kInvalidLabel);
  EXPECT_EQ(refined.labels().Find("knows@string"), graph::kInvalidLabel);
  // Object ids preserved (values at same indices).
  for (graph::ObjectId o = 0; o < g.NumObjects(); ++o) {
    EXPECT_EQ(g.IsAtomic(o), refined.IsAtomic(o));
    EXPECT_EQ(g.Value(o), refined.Value(o));
  }
}

TEST(RefineAtomicSortsTest, SplitsTypesByValueSort) {
  // Two objects both with one "id" field — one numeric, one textual.
  // Without sorts they share a perfect type; with sorts they split
  // (Remark 2.1's point).
  graph::GraphBuilder b;
  ASSERT_OK(b.Atomic("v1", "12345"));
  ASSERT_OK(b.Atomic("v2", "abc-99"));
  ASSERT_OK(b.Edge("x", "id", "v1"));
  ASSERT_OK(b.Edge("y", "id", "v2"));
  util::Status st;
  graph::DataGraph g = std::move(b).Build(&st);
  ASSERT_OK(st);

  ASSERT_OK_AND_ASSIGN(PerfectTypingResult plain, PerfectTypingViaGfp(g));
  EXPECT_EQ(plain.program.NumTypes(), 1u);

  graph::DataGraph refined = RefineAtomicSorts(g);
  ASSERT_OK_AND_ASSIGN(PerfectTypingResult sorted,
                       PerfectTypingViaGfp(refined));
  EXPECT_EQ(sorted.program.NumTypes(), 2u);
}

TEST(RefineAtomicSortsTest, CustomClassifier) {
  graph::GraphBuilder b;
  ASSERT_OK(b.Atomic("v", "whatever"));
  ASSERT_OK(b.Edge("x", "f", "v"));
  util::Status st;
  graph::DataGraph g = std::move(b).Build(&st);
  ASSERT_OK(st);
  graph::DataGraph refined =
      RefineAtomicSorts(g, [](std::string_view) { return "blob"; });
  EXPECT_NE(refined.labels().Find("f@blob"), graph::kInvalidLabel);
}

TEST(RefineByValueEnumTest, MaleFemaleExample) {
  // The §2 example: classify differently by the value of a sex subobject.
  graph::GraphBuilder b;
  int i = 0;
  auto person = [&](const char* name, const char* sex) {
    std::string v = "s" + std::to_string(i++);
    ASSERT_OK(b.Atomic(v, sex));
    ASSERT_OK(b.Edge(name, "sex", v));
    std::string n = "n" + std::to_string(i++);
    ASSERT_OK(b.Atomic(n, name));
    ASSERT_OK(b.Edge(name, "name", n));
  };
  person("alice", "Female");
  person("bob", "Male");
  person("carol", "Female");
  util::Status st;
  graph::DataGraph g = std::move(b).Build(&st);
  ASSERT_OK(st);

  ASSERT_OK_AND_ASSIGN(PerfectTypingResult plain, PerfectTypingViaGfp(g));
  EXPECT_EQ(plain.program.NumTypes(), 1u);

  ASSERT_OK_AND_ASSIGN(graph::DataGraph refined,
                       RefineByValueEnum(g, "sex"));
  EXPECT_NE(refined.labels().Find("sex=Male"), graph::kInvalidLabel);
  EXPECT_NE(refined.labels().Find("sex=Female"), graph::kInvalidLabel);
  ASSERT_OK_AND_ASSIGN(PerfectTypingResult split,
                       PerfectTypingViaGfp(refined));
  EXPECT_EQ(split.program.NumTypes(), 2u);
}

TEST(RefineByValueEnumTest, GuardsAndErrors) {
  graph::GraphBuilder b;
  for (int i = 0; i < 5; ++i) {
    std::string v = "v" + std::to_string(i);
    ASSERT_OK(b.Atomic(v, "value" + std::to_string(i)));
    ASSERT_OK(b.Edge("x" + std::to_string(i), "f", v));
  }
  util::Status st;
  graph::DataGraph g = std::move(b).Build(&st);
  ASSERT_OK(st);
  EXPECT_EQ(RefineByValueEnum(g, "nope").status().code(),
            util::StatusCode::kNotFound);
  EXPECT_EQ(RefineByValueEnum(g, "f", /*max_distinct=*/3).status().code(),
            util::StatusCode::kFailedPrecondition);
  EXPECT_TRUE(RefineByValueEnum(g, "f", 5).ok());
}

}  // namespace
}  // namespace schemex::typing
