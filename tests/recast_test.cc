#include <gtest/gtest.h>

#include "tests/test_util.h"
#include "typing/perfect_typing.h"
#include "typing/recast.h"

namespace schemex::typing {
namespace {

graph::ObjectId Obj(const graph::DataGraph& g, const char* name) {
  for (graph::ObjectId o = 0; o < g.NumObjects(); ++o) {
    if (g.Name(o) == name) return o;
  }
  return graph::kInvalidObject;
}

TEST(RecastTest, PerfectProgramRecastsExactly) {
  graph::DataGraph g = test::MakeFigure4Database();
  ASSERT_OK_AND_ASSIGN(PerfectTypingResult stage1, PerfectTypingViaGfp(g));
  std::vector<std::vector<TypeId>> homes(g.NumObjects());
  for (size_t o = 0; o < stage1.home.size(); ++o) {
    if (stage1.home[o] != kInvalidType) homes[o] = {stage1.home[o]};
  }
  ASSERT_OK_AND_ASSIGN(RecastResult r, Recast(stage1.program, g, homes));
  EXPECT_EQ(r.num_exact, g.NumComplexObjects());
  EXPECT_EQ(r.num_fallback, 0u);
  EXPECT_EQ(r.num_untyped, 0u);
  // Homes are contained in the final assignment.
  for (graph::ObjectId o = 0; o < g.NumObjects(); ++o) {
    for (TypeId t : homes[o]) EXPECT_TRUE(r.assignment.Has(o, t));
  }
}

TEST(RecastTest, GfpTypesAddedBeyondHomes) {
  // o4 satisfies o2's home type as well (extra links) — recast puts it in
  // both.
  graph::DataGraph g = test::MakeFigure4Database();
  ASSERT_OK_AND_ASSIGN(PerfectTypingResult stage1, PerfectTypingViaGfp(g));
  std::vector<std::vector<TypeId>> homes(g.NumObjects());
  for (size_t o = 0; o < stage1.home.size(); ++o) {
    if (stage1.home[o] != kInvalidType) homes[o] = {stage1.home[o]};
  }
  ASSERT_OK_AND_ASSIGN(RecastResult r, Recast(stage1.program, g, homes));
  graph::ObjectId o4 = Obj(g, "o4");
  EXPECT_EQ(r.assignment.TypesOf(o4).size(), 2u);

  RecastOptions no_extra;
  no_extra.add_gfp_types = false;
  ASSERT_OK_AND_ASSIGN(RecastResult r2,
                       Recast(stage1.program, g, homes, no_extra));
  EXPECT_EQ(r2.assignment.TypesOf(o4).size(), 1u);
}

TEST(RecastTest, ObjectPictureReflectsNeighborTypes) {
  graph::DataGraph g = test::MakeFigure4Database();
  TypeAssignment tau(g.NumObjects());
  tau.Assign(Obj(g, "o2"), 7);
  TypeSignature pic = ObjectPicture(g, tau, Obj(g, "o1"));
  graph::LabelId a = g.labels().Find("a");
  EXPECT_TRUE(pic.Contains(TypedLink::Out(a, 7)));
  // Neighbors without assigned types contribute nothing.
  EXPECT_EQ(pic.size(), 1u);

  // o2's picture: incoming a from (unassigned) o1 is dropped; outgoing b
  // to atomic stays.
  TypeSignature pic2 = ObjectPicture(g, tau, Obj(g, "o2"));
  graph::LabelId b = g.labels().Find("b");
  EXPECT_TRUE(pic2.Contains(TypedLink::OutAtomic(b)));
  EXPECT_EQ(pic2.size(), 1u);
}

TEST(RecastTest, NearestTypeFallback) {
  // A program with a single type "has a and b"; an object with only `a`
  // fits nothing exactly and falls back to the nearest type.
  graph::GraphBuilder b;
  ASSERT_OK(b.Atomic("x", "1"));
  ASSERT_OK(b.Edge("lonely", "a", "x"));
  util::Status st;
  graph::DataGraph g = std::move(b).Build(&st);
  ASSERT_OK(st);
  graph::LabelId a = g.labels().Find("a");
  graph::LabelId bb = g.InternLabel("b");
  TypingProgram p;
  p.AddType("t", TypeSignature::FromLinks(
                     {TypedLink::OutAtomic(a), TypedLink::OutAtomic(bb)}));

  std::vector<std::vector<TypeId>> no_homes(g.NumObjects());
  graph::ObjectId lonely = Obj(g, "lonely");
  ASSERT_OK_AND_ASSIGN(RecastResult r, Recast(p, g, no_homes));
  EXPECT_EQ(r.num_exact, 0u);
  EXPECT_EQ(r.num_fallback, 1u);
  EXPECT_TRUE(r.assignment.Has(lonely, 0));

  RecastOptions strict;
  strict.nearest_type_fallback = false;
  ASSERT_OK_AND_ASSIGN(RecastResult r2, Recast(p, g, no_homes, strict));
  EXPECT_EQ(r2.num_untyped, 1u);
  EXPECT_TRUE(r2.assignment.TypesOf(lonely).empty());
}

TEST(RecastTest, NearestTypeDistanceReported) {
  graph::GraphBuilder b;
  ASSERT_OK(b.Atomic("x", "1"));
  ASSERT_OK(b.Edge("o", "a", "x"));
  util::Status st;
  graph::DataGraph g = std::move(b).Build(&st);
  ASSERT_OK(st);
  graph::LabelId a = g.labels().Find("a");
  graph::LabelId c = g.InternLabel("c");
  TypingProgram p;
  p.AddType("far", TypeSignature::FromLinks(
                       {TypedLink::OutAtomic(c)}));                 // d = 2
  p.AddType("near", TypeSignature::FromLinks(
                        {TypedLink::OutAtomic(a),
                         TypedLink::OutAtomic(c)}));                // d = 1
  TypeAssignment tau(g.NumObjects());
  size_t dist = 0;
  TypeId t = NearestType(p, g, tau, Obj(g, "o"), &dist);
  EXPECT_EQ(t, 1);
  EXPECT_EQ(dist, 1u);
}

TEST(RecastTest, NearestTypeTieBreaksLowestId) {
  graph::DataGraph g;
  g.AddComplex("o");
  graph::LabelId a = g.InternLabel("a");
  graph::LabelId b = g.InternLabel("b");
  TypingProgram p;
  p.AddType("t0", TypeSignature::FromLinks({TypedLink::OutAtomic(a)}));
  p.AddType("t1", TypeSignature::FromLinks({TypedLink::OutAtomic(b)}));
  TypeAssignment tau(1);
  EXPECT_EQ(NearestType(p, g, tau, 0), 0);
}

TEST(RecastTest, EmptyProgram) {
  graph::DataGraph g = test::MakeFigure2Database();
  TypingProgram empty;
  std::vector<std::vector<TypeId>> homes(g.NumObjects());
  ASSERT_OK_AND_ASSIGN(RecastResult r, Recast(empty, g, homes));
  EXPECT_EQ(r.num_untyped, g.NumComplexObjects());
  TypeAssignment tau(g.NumObjects());
  EXPECT_EQ(NearestType(empty, g, tau, 0), kInvalidType);
}

TEST(RecastTest, HomesKeptEvenWhenUnsatisfied) {
  // An object whose home requirements are not witnessed keeps the home —
  // the gap shows up as deficit, not as a dropped assignment (§6).
  graph::GraphBuilder b;
  ASSERT_OK(b.Atomic("x", "1"));
  ASSERT_OK(b.Edge("o", "a", "x"));
  util::Status st;
  graph::DataGraph g = std::move(b).Build(&st);
  ASSERT_OK(st);
  graph::LabelId a = g.labels().Find("a");
  graph::LabelId m = g.InternLabel("missing");
  TypingProgram p;
  p.AddType("t", TypeSignature::FromLinks(
                     {TypedLink::OutAtomic(a), TypedLink::OutAtomic(m)}));
  std::vector<std::vector<TypeId>> homes(g.NumObjects());
  graph::ObjectId o = Obj(g, "o");
  homes[o] = {0};
  ASSERT_OK_AND_ASSIGN(RecastResult r, Recast(p, g, homes));
  EXPECT_TRUE(r.assignment.Has(o, 0));
  EXPECT_EQ(r.num_exact, 0u);
  EXPECT_EQ(r.num_fallback, 0u);  // home made a fallback unnecessary
}

}  // namespace
}  // namespace schemex::typing
