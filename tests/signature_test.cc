#include <gtest/gtest.h>

#include "graph/label.h"
#include "typing/type_signature.h"
#include "typing/typed_link.h"

namespace schemex::typing {
namespace {

class SignatureTest : public ::testing::Test {
 protected:
  graph::LabelInterner labels_;
  graph::LabelId a_ = labels_.Intern("a");
  graph::LabelId b_ = labels_.Intern("b");
  graph::LabelId c_ = labels_.Intern("c");
};

TEST_F(SignatureTest, FromLinksSortsAndDedupes) {
  TypeSignature s = TypeSignature::FromLinks(
      {TypedLink::Out(b_, 1), TypedLink::OutAtomic(a_), TypedLink::Out(b_, 1),
       TypedLink::In(a_, 0)});
  EXPECT_EQ(s.size(), 3u);
  EXPECT_TRUE(std::is_sorted(s.links().begin(), s.links().end()));
  EXPECT_TRUE(s.Contains(TypedLink::OutAtomic(a_)));
  EXPECT_FALSE(s.Contains(TypedLink::OutAtomic(b_)));
}

TEST_F(SignatureTest, InsertEraseMaintainOrder) {
  TypeSignature s;
  s.Insert(TypedLink::Out(c_, 2));
  s.Insert(TypedLink::OutAtomic(a_));
  s.Insert(TypedLink::OutAtomic(a_));  // dup
  EXPECT_EQ(s.size(), 2u);
  s.Erase(TypedLink::Out(c_, 2));
  EXPECT_EQ(s.size(), 1u);
  s.Erase(TypedLink::Out(c_, 2));  // absent: no-op
  EXPECT_EQ(s.size(), 1u);
}

TEST_F(SignatureTest, SubsetUnionIntersection) {
  TypeSignature small = TypeSignature::FromLinks({TypedLink::OutAtomic(a_)});
  TypeSignature big = TypeSignature::FromLinks(
      {TypedLink::OutAtomic(a_), TypedLink::OutAtomic(b_)});
  EXPECT_TRUE(small.IsSubsetOf(big));
  EXPECT_FALSE(big.IsSubsetOf(small));
  EXPECT_TRUE(small.IsSubsetOf(small));
  EXPECT_EQ(TypeSignature::Union(small, big), big);
  EXPECT_EQ(TypeSignature::Intersection(small, big), small);
}

TEST_F(SignatureTest, Example52Distances) {
  // The paper's Example 5.2: d(t1,t2)=2, d(t1,t3)=3, d(t2,t3)=3.
  TypeSignature t1 = TypeSignature::FromLinks(
      {TypedLink::OutAtomic(a_), TypedLink::Out(b_, 1)});
  TypeSignature t2 = TypeSignature::FromLinks(
      {TypedLink::OutAtomic(a_), TypedLink::Out(b_, 0), TypedLink::Out(b_, 1),
       TypedLink::Out(b_, 2)});
  TypeSignature t3 = TypeSignature::FromLinks({TypedLink::Out(b_, 0)});
  EXPECT_EQ(TypeSignature::SymmetricDifferenceSize(t1, t2), 2u);
  EXPECT_EQ(TypeSignature::SymmetricDifferenceSize(t1, t3), 3u);
  EXPECT_EQ(TypeSignature::SymmetricDifferenceSize(t2, t3), 3u);
}

TEST_F(SignatureTest, DistanceIsAMetricOnExamples) {
  // Identity + symmetry; triangle inequality holds for symmetric
  // difference cardinality in general.
  TypeSignature x = TypeSignature::FromLinks(
      {TypedLink::OutAtomic(a_), TypedLink::In(b_, 3)});
  TypeSignature y = TypeSignature::FromLinks({TypedLink::In(b_, 3)});
  EXPECT_EQ(TypeSignature::SymmetricDifferenceSize(x, x), 0u);
  EXPECT_EQ(TypeSignature::SymmetricDifferenceSize(x, y),
            TypeSignature::SymmetricDifferenceSize(y, x));
}

TEST_F(SignatureTest, RemapTargetMergesDuplicates) {
  // Example 5.1's projection: remapping 2 -> 1 can collapse two links.
  TypeSignature s = TypeSignature::FromLinks(
      {TypedLink::Out(b_, 1), TypedLink::Out(b_, 2)});
  s.RemapTarget(2, 1);
  EXPECT_EQ(s.size(), 1u);
  EXPECT_TRUE(s.Contains(TypedLink::Out(b_, 1)));
}

TEST_F(SignatureTest, RemapTargetsVector) {
  TypeSignature s = TypeSignature::FromLinks(
      {TypedLink::Out(a_, 0), TypedLink::Out(b_, 2), TypedLink::OutAtomic(c_)});
  std::vector<TypeId> map = {5, 6, 5};
  s.RemapTargets(map);
  EXPECT_TRUE(s.Contains(TypedLink::Out(a_, 5)));
  EXPECT_TRUE(s.Contains(TypedLink::Out(b_, 5)));
  EXPECT_TRUE(s.Contains(TypedLink::OutAtomic(c_)));  // atomic unchanged
}

TEST_F(SignatureTest, ToStringUsesPaperNotation) {
  TypeSignature s = TypeSignature::FromLinks(
      {TypedLink::In(a_, 0), TypedLink::Out(b_, 2), TypedLink::OutAtomic(c_)});
  std::string str = s.ToString(labels_);
  EXPECT_NE(str.find("<-a^1"), std::string::npos);   // 1-based target ids
  EXPECT_NE(str.find("->b^3"), std::string::npos);
  EXPECT_NE(str.find("->c^0"), std::string::npos);   // atomic is ^0
}

TEST_F(SignatureTest, HashDiscriminates) {
  TypeSignature s1 = TypeSignature::FromLinks({TypedLink::OutAtomic(a_)});
  TypeSignature s2 = TypeSignature::FromLinks({TypedLink::OutAtomic(b_)});
  TypeSignature s3 = TypeSignature::FromLinks({TypedLink::OutAtomic(a_)});
  EXPECT_EQ(s1.Hash(), s3.Hash());
  EXPECT_NE(s1.Hash(), s2.Hash());
}

TEST_F(SignatureTest, OrderingIsTotal) {
  TypeSignature s1 = TypeSignature::FromLinks({TypedLink::OutAtomic(a_)});
  TypeSignature s2 = TypeSignature::FromLinks({TypedLink::OutAtomic(b_)});
  EXPECT_TRUE((s1 < s2) != (s2 < s1));
  EXPECT_FALSE(s1 < s1);
}

TEST(TypedLinkTest, FactoriesAndOrdering) {
  graph::LabelInterner labels;
  graph::LabelId l = labels.Intern("x");
  TypedLink in = TypedLink::In(l, 4);
  TypedLink out = TypedLink::Out(l, 4);
  TypedLink atom = TypedLink::OutAtomic(l);
  EXPECT_EQ(in.dir, Direction::kIncoming);
  EXPECT_EQ(out.dir, Direction::kOutgoing);
  EXPECT_EQ(atom.target, kAtomicType);
  EXPECT_NE(in, out);
  EXPECT_LT(in, out);  // incoming sorts first
  EXPECT_EQ(TypedLinkToString(in, labels), "<-x^5");
  EXPECT_EQ(TypedLinkToString(atom, labels), "->x^0");
  EXPECT_NE(HashTypedLink(in), HashTypedLink(out));
}

}  // namespace
}  // namespace schemex::typing
