#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "cluster/distance.h"
#include "typing/bit_signature.h"
#include "typing/type_signature.h"
#include "util/random.h"

namespace schemex::typing {
namespace {

/// A random typed link from a small pool: labels in [0, num_labels),
/// targets in {kAtomicType} ∪ [0, num_types) — outgoing may be atomic,
/// incoming never (the DataGraph invariant TypedLink documents).
TypedLink RandomLink(util::Rng& rng, size_t num_labels, size_t num_types) {
  auto label = static_cast<graph::LabelId>(rng.Uniform(num_labels));
  bool incoming = num_types > 0 && rng.Bernoulli(0.4);
  if (incoming) {
    return TypedLink::In(label, static_cast<TypeId>(rng.Uniform(num_types)));
  }
  if (num_types == 0 || rng.Bernoulli(0.3)) {
    return TypedLink::OutAtomic(label);
  }
  return TypedLink::Out(label, static_cast<TypeId>(rng.Uniform(num_types)));
}

TypeSignature RandomSignature(util::Rng& rng, size_t max_links,
                              size_t num_labels, size_t num_types) {
  std::vector<TypedLink> links;
  size_t n = rng.Uniform(max_links + 1);
  for (size_t i = 0; i < n; ++i) {
    links.push_back(RandomLink(rng, num_labels, num_types));
  }
  return TypeSignature::FromLinks(std::move(links));
}

constexpr cluster::PsiKind kAllPsi[] = {
    cluster::PsiKind::kSimpleD, cluster::PsiKind::kPsi1,
    cluster::PsiKind::kPsi2,    cluster::PsiKind::kPsi3,
    cluster::PsiKind::kPsi4,    cluster::PsiKind::kPsi5};

TEST(BitDistanceTest, MatchesSortedReferenceOnRandomPairs) {
  for (uint64_t seed : {1ULL, 7ULL, 42ULL}) {
    util::Rng rng(seed);
    for (int round = 0; round < 200; ++round) {
      TypeSignature a = RandomSignature(rng, 24, 8, 6);
      TypeSignature b = RandomSignature(rng, 24, 8, 6);

      BitSignatureIndex index;
      BitSignature ea = index.Encode(a);
      BitSignature eb = index.Encode(b);
      size_t ref = TypeSignature::SymmetricDifferenceSize(a, b);
      EXPECT_EQ(BitSignatureIndex::Distance(ea, eb), ref)
          << "seed " << seed << " round " << round;
      // Distance is symmetric and zero on the diagonal.
      EXPECT_EQ(BitSignatureIndex::Distance(eb, ea), ref);
      EXPECT_EQ(BitSignatureIndex::Distance(ea, ea), 0u);
    }
  }
}

TEST(BitDistanceTest, AllPsiKindsAgreeWithReferenceDistance) {
  // Every weighted function is a pure function of d, so feeding it the
  // kernel's d must reproduce the reference exactly (same doubles, not
  // approximately).
  util::Rng rng(99);
  for (int round = 0; round < 100; ++round) {
    TypeSignature a = RandomSignature(rng, 16, 6, 5);
    TypeSignature b = RandomSignature(rng, 16, 6, 5);
    BitSignatureIndex index;
    BitSignature ea = index.Encode(a);
    BitSignature eb = index.Encode(b);
    size_t bit_d = BitSignatureIndex::Distance(ea, eb);
    size_t ref_d = TypeSignature::SymmetricDifferenceSize(a, b);
    double w1 = 1 + static_cast<double>(rng.Uniform(100));
    double w2 = 1 + static_cast<double>(rng.Uniform(100));
    size_t L = 1 + rng.Uniform(40);
    for (cluster::PsiKind kind : kAllPsi) {
      double bit_cost = cluster::WeightedDistance(kind, w1, w2, bit_d, L);
      double ref_cost = cluster::WeightedDistance(kind, w1, w2, ref_d, L);
      EXPECT_EQ(bit_cost, ref_cost) << cluster::PsiKindName(kind);
    }
  }
}

TEST(BitDistanceTest, EmptySignatures) {
  BitSignatureIndex index;
  TypeSignature empty;
  TypeSignature one = TypeSignature::FromLinks({TypedLink::OutAtomic(0)});
  BitSignature ee = index.Encode(empty);
  BitSignature eo = index.Encode(one);
  EXPECT_EQ(BitSignatureIndex::Distance(ee, ee), 0u);
  EXPECT_EQ(BitSignatureIndex::Distance(ee, eo), 1u);
  EXPECT_EQ(BitSignatureIndex::Distance(eo, ee), 1u);
  EXPECT_EQ(index.NumBits(), 1u);
}

TEST(BitDistanceTest, ZeroDistanceIsFreeAndOverflowGoesToInfinity) {
  // d = 0 must price at 0 for every kind; huge L^d must saturate to +inf
  // (which still orders correctly in min-loops).
  for (cluster::PsiKind kind : kAllPsi) {
    EXPECT_EQ(cluster::WeightedDistance(kind, 3, 4, 0, 1000), 0.0)
        << cluster::PsiKindName(kind);
  }
  double overflow =
      cluster::WeightedDistance(cluster::PsiKind::kPsi4, 1, 1, 5000, 1000);
  EXPECT_TRUE(std::isinf(overflow));
  EXPECT_GT(overflow, cluster::WeightedDistance(cluster::PsiKind::kPsi4, 1, 1,
                                                1, 1000));
}

/// Universe sizes straddling the word boundary: 63, 64, and 65 distinct
/// links exercise the full-word, exact-boundary, and spill-word paths of
/// the XOR + popcount loop.
TEST(BitDistanceTest, WordBoundaryUniverses) {
  for (size_t universe : {63u, 64u, 65u}) {
    std::vector<TypedLink> all;
    for (size_t i = 0; i < universe; ++i) {
      all.push_back(TypedLink::OutAtomic(static_cast<graph::LabelId>(i)));
    }
    util::Rng rng(1000 + universe);
    for (int round = 0; round < 50; ++round) {
      std::vector<TypedLink> la, lb;
      for (const TypedLink& l : all) {
        if (rng.Bernoulli(0.5)) la.push_back(l);
        if (rng.Bernoulli(0.5)) lb.push_back(l);
      }
      TypeSignature a = TypeSignature::FromLinks(la);
      TypeSignature b = TypeSignature::FromLinks(lb);
      BitSignatureIndex index;
      // Register the whole universe first so NumBits hits the boundary.
      BitSignature all_enc = index.Encode(TypeSignature::FromLinks(all));
      ASSERT_EQ(index.NumBits(), universe);
      ASSERT_EQ(index.NumWords(), (universe + 63) / 64);
      BitSignature ea = index.Encode(a);
      BitSignature eb = index.Encode(b);
      EXPECT_EQ(BitSignatureIndex::Distance(ea, eb),
                TypeSignature::SymmetricDifferenceSize(a, b));
      EXPECT_EQ(BitSignatureIndex::Distance(all_enc, ea),
                universe - a.size());
    }
  }
}

TEST(BitDistanceTest, EncodeFrozenCountsOutOfUniverseLinksAsExtras) {
  // Universe = {->0, ->1}; the probe carries two links outside it. Each
  // foreign link can never match a universe-only signature, so it adds
  // exactly +1 to any distance against one.
  BitSignatureIndex index;
  TypeSignature t0 =
      TypeSignature::FromLinks({TypedLink::OutAtomic(0), TypedLink::OutAtomic(1)});
  BitSignature e0 = index.Encode(t0);

  TypeSignature probe = TypeSignature::FromLinks(
      {TypedLink::OutAtomic(0), TypedLink::OutAtomic(7),
       TypedLink::In(3, 2)});
  BitSignature ep = index.EncodeFrozen(probe);
  EXPECT_EQ(ep.extra, 2u);
  EXPECT_EQ(index.NumBits(), 2u);  // frozen: universe did not grow
  EXPECT_EQ(BitSignatureIndex::Distance(ep, e0),
            TypeSignature::SymmetricDifferenceSize(probe, t0));
}

TEST(BitDistanceTest, EncodingsFromGrownUniverseStayComparable) {
  // Encode a small signature, grow the universe past a word boundary,
  // then compare old (short) and new (long) encodings: Distance must
  // zero-extend the short one.
  BitSignatureIndex index;
  TypeSignature small =
      TypeSignature::FromLinks({TypedLink::OutAtomic(0)});
  BitSignature e_small = index.Encode(small);  // 1 word

  std::vector<TypedLink> many;
  for (size_t i = 0; i < 130; ++i) {
    many.push_back(TypedLink::OutAtomic(static_cast<graph::LabelId>(i)));
  }
  TypeSignature big = TypeSignature::FromLinks(many);
  BitSignature e_big = index.Encode(big);  // 3 words
  ASSERT_GT(e_big.words.size(), e_small.words.size());

  EXPECT_EQ(BitSignatureIndex::Distance(e_small, e_big),
            TypeSignature::SymmetricDifferenceSize(small, big));
  EXPECT_EQ(BitSignatureIndex::Distance(e_big, e_small),
            TypeSignature::SymmetricDifferenceSize(small, big));
}

TEST(BitDistanceTest, RandomizedFrozenProbesMatchReference) {
  // EncodeFrozen probes against a fixed universe, with probe links drawn
  // from a wider pool than the universe was built from — the Stage-3
  // shape (object pictures vs program signatures).
  util::Rng rng(2024);
  for (int round = 0; round < 100; ++round) {
    TypeSignature u1 = RandomSignature(rng, 12, 4, 3);
    TypeSignature u2 = RandomSignature(rng, 12, 4, 3);
    BitSignatureIndex index;
    BitSignature e1 = index.Encode(u1);
    BitSignature e2 = index.Encode(u2);
    // Wider pool: labels up to 8, types up to 6.
    TypeSignature probe = RandomSignature(rng, 16, 8, 6);
    BitSignature ep = index.EncodeFrozen(probe);
    EXPECT_EQ(BitSignatureIndex::Distance(ep, e1),
              TypeSignature::SymmetricDifferenceSize(probe, u1));
    EXPECT_EQ(BitSignatureIndex::Distance(ep, e2),
              TypeSignature::SymmetricDifferenceSize(probe, u2));
  }
}

}  // namespace
}  // namespace schemex::typing
