#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

namespace schemex::util {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> sum{0};
  std::vector<std::future<void>> futures;
  for (int i = 1; i <= 100; ++i) {
    futures.push_back(pool.Submit([&sum, i] { sum += i; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(sum.load(), 5050);
}

TEST(ThreadPoolTest, ReturnsValuesThroughFutures) {
  ThreadPool pool(3);
  auto f1 = pool.Submit([] { return 42; });
  auto f2 = pool.Submit([] { return std::string("hello"); });
  EXPECT_EQ(f1.get(), 42);
  EXPECT_EQ(f2.get(), "hello");
}

TEST(ThreadPoolTest, SingleWorkerPreservesFifoOrder) {
  // With one worker the queue is drained strictly in submission order,
  // even when many producer threads contend on Submit.
  ThreadPool pool(1);
  std::mutex mu;
  std::vector<int> order;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.Submit([&, i] {
      std::lock_guard<std::mutex> lock(mu);
      order.push_back(i);
    }));
  }
  for (auto& f : futures) f.get();
  ASSERT_EQ(order.size(), 200u);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPoolTest, AllTasksRunUnderContention) {
  // Many producers x several workers: every task runs exactly once.
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  std::vector<std::thread> producers;
  std::mutex mu;
  std::vector<std::future<void>> futures;
  for (int p = 0; p < 8; ++p) {
    producers.emplace_back([&] {
      for (int i = 0; i < 50; ++i) {
        auto f = pool.Submit([&ran] { ++ran; });
        std::lock_guard<std::mutex> lock(mu);
        futures.push_back(std::move(f));
      }
    });
  }
  for (auto& t : producers) t.join();
  for (auto& f : futures) f.get();
  EXPECT_EQ(ran.load(), 400);
}

TEST(ThreadPoolTest, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto ok = pool.Submit([] { return 1; });
  auto bad = pool.Submit([]() -> int {
    throw std::runtime_error("boom");
  });
  EXPECT_EQ(ok.get(), 1);
  EXPECT_THROW(bad.get(), std::runtime_error);
  // The worker that ran the throwing task is still alive and usable.
  EXPECT_EQ(pool.Submit([] { return 7; }).get(), 7);
}

TEST(ThreadPoolTest, ShutdownDrainsQueuedWork) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(1);
    // Head task blocks the single worker so the rest pile up queued.
    std::promise<void> gate;
    std::shared_future<void> gate_f = gate.get_future().share();
    auto head = pool.Submit([gate_f] { gate_f.wait(); });
    for (int i = 0; i < 20; ++i) {
      (void)pool.Submit([&ran] { ++ran; });
    }
    EXPECT_GE(pool.QueueDepth(), 19u);
    gate.set_value();
    pool.Shutdown();  // must run all 20 queued tasks before joining
    head.get();
  }
  EXPECT_EQ(ran.load(), 20);
}

TEST(ThreadPoolTest, SubmitAfterShutdownThrows) {
  ThreadPool pool(2);
  pool.Shutdown();
  EXPECT_THROW((void)pool.Submit([] {}), std::runtime_error);
}

TEST(ThreadPoolTest, DestructorJoinsWithoutRunningTasksLost) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      (void)pool.Submit([&ran] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        ++ran;
      });
    }
    // Destructor == Shutdown: drain everything, join all workers.
  }
  EXPECT_EQ(ran.load(), 50);
}

}  // namespace
}  // namespace schemex::util
