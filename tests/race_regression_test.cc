// Deterministic regressions for races found (or prevented) by the TSan
// lane and the thread-safety annotation pass — see docs/static-analysis.md.
// Each test pins down one historical suspect:
//
//  - MetricsRegistry snapshots racing concurrent Record/AddCounter
//  - Server teardown with fire-and-forget HandleAsync work in flight
//  - ThreadPool Shutdown racing Submit and a second Shutdown
//  - TcpServer::Shutdown called concurrently (the join must serialize)
//  - SaveWorkspace racing SaveWorkspace into the same directory
//
// The suites run in the plain build too, but their teeth are the TSan CI
// lane (`cmake --preset tsan`): the counts below are chosen so every
// interleaving worth flagging actually happens within a few milliseconds.

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <filesystem>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "catalog/workspace.h"
#include "extract/extractor.h"
#include "gen/dbg.h"
#include "service/metrics.h"
#include "service/request.h"
#include "service/server.h"
#include "service/tcp_client.h"
#include "service/tcp_server.h"
#include "tests/test_util.h"
#include "util/thread_pool.h"

namespace schemex {
namespace {

namespace fs = std::filesystem;

// Releases a batch of threads at once so short critical sections really
// overlap instead of running in spawn order.
class StartGate {
 public:
  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return open_; });
  }
  void Open() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      open_ = true;
    }
    cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool open_ = false;
};

TEST(MetricsRaceRegression, CounterSnapshotVsConcurrentAddCounter) {
  service::MetricsRegistry metrics;
  constexpr int kWriters = 4;
  constexpr int kIncrements = 2000;

  StartGate gate;
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&metrics, &gate, w] {
      gate.Wait();
      for (int i = 0; i < kIncrements; ++i) {
        metrics.AddCounter("race.shared", 1);
        metrics.AddCounter("race.per_writer_" + std::to_string(w), 1);
      }
    });
  }
  std::atomic<bool> done{false};
  std::thread reader([&metrics, &gate, &done] {
    gate.Wait();
    while (!done.load()) {
      // Snapshots during the storm must be internally consistent (no
      // torn counter values, no duplicated names), which gtest can't see
      // directly — TSan can, and the totals check below catches lost
      // updates.
      for (const auto& [name, value] : metrics.CounterSnapshot()) {
        EXPECT_GE(value, 0) << name;
      }
    }
  });
  gate.Open();
  for (auto& t : threads) t.join();
  done.store(true);
  reader.join();

  int64_t shared = -1;
  for (const auto& [name, value] : metrics.CounterSnapshot()) {
    if (name == "race.shared") shared = value;
  }
  EXPECT_EQ(shared, int64_t{kWriters} * kIncrements);
}

TEST(MetricsRaceRegression, VerbSnapshotVsConcurrentRecord) {
  service::MetricsRegistry metrics;
  constexpr int kWriters = 4;
  constexpr int kRecords = 1500;

  StartGate gate;
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&metrics, &gate] {
      gate.Wait();
      for (int i = 0; i < kRecords; ++i) {
        metrics.Record("extract", 0.25, /*ok=*/i % 7 != 0,
                       /*timeout=*/false);
      }
    });
  }
  std::atomic<bool> done{false};
  std::thread reader([&metrics, &gate, &done] {
    gate.Wait();
    while (!done.load()) {
      for (const service::VerbStats& s : metrics.Snapshot()) {
        // count is bumped with errors/total_ms under one lock; a reader
        // must never observe errors outrunning count.
        EXPECT_LE(s.errors, s.count);
        EXPECT_LE(s.timeouts, s.errors);
      }
    }
  });
  gate.Open();
  for (auto& t : writers) t.join();
  done.store(true);
  reader.join();

  auto snap = metrics.Snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].count, uint64_t{kWriters} * kRecords);
}

TEST(ServerShutdownRegression, DestructorDrainsInFlightHandleAsync) {
  constexpr int kRequests = 64;
  std::atomic<int> completed{0};
  {
    service::ServerOptions opt;
    opt.num_threads = 4;
    service::Server server(opt);
    for (int i = 0; i < kRequests; ++i) {
      service::Request req;
      req.id = i;
      req.verb = service::Verb::kStats;
      server.HandleAsync(std::move(req),
                         [&completed](service::Response) { ++completed; });
    }
    // ~Server joins the pool; every queued request must finish first.
  }
  EXPECT_EQ(completed.load(), kRequests);
}

TEST(ThreadPoolShutdownRegression, ConcurrentShutdownDrainsOnce) {
  util::ThreadPool pool(3);
  std::atomic<int> ran{0};
  for (int i = 0; i < 200; ++i) {
    pool.Submit([&ran] { ++ran; });
  }
  StartGate gate;
  std::vector<std::thread> shutters;
  for (int i = 0; i < 3; ++i) {
    shutters.emplace_back([&pool, &gate] {
      gate.Wait();
      pool.Shutdown();
    });
  }
  gate.Open();
  for (auto& t : shutters) t.join();
  // Every caller returned only after the drain: all 200 tasks ran.
  EXPECT_EQ(ran.load(), 200);
  EXPECT_THROW(pool.Submit([] {}), std::runtime_error);
}

TEST(TcpServerShutdownRegression, ConcurrentShutdownWithInFlightRequests) {
  service::Server server;
  ASSERT_OK(server.InstallWorkspace("fig2", [] {
    catalog::Workspace ws;
    ws.SetGraph(test::MakeFigure2Database());
    ws.assignment = typing::TypeAssignment(ws.graph->NumObjects());
    return ws;
  }()));

  service::TcpServerOptions opt;
  opt.drain_timeout_s = 5.0;
  service::TcpServer tcp(&server, opt);
  ASSERT_OK(tcp.Start());

  ASSERT_OK_AND_ASSIGN(service::TcpClient client,
                       service::TcpClient::Connect("127.0.0.1", tcp.port()));
  for (int i = 0; i < 8; ++i) {
    ASSERT_OK(client.SendLine(
        R"({"id":)" + std::to_string(i) + R"(,"verb":"stats"})"));
  }

  // Several threads race the drain; each must return only after the poll
  // thread has exited, and exactly one performs the teardown.
  StartGate gate;
  std::vector<std::thread> shutters;
  for (int i = 0; i < 4; ++i) {
    shutters.emplace_back([&tcp, &gate] {
      gate.Wait();
      tcp.Shutdown();
    });
  }
  gate.Open();
  for (auto& t : shutters) t.join();
  EXPECT_FALSE(tcp.running());
  EXPECT_EQ(tcp.open_connections(), 0u);
}

TEST(WorkspaceSaveRegression, ConcurrentSavesNeverMixGenerations) {
  fs::path dir = fs::temp_directory_path() /
                 ("schemex_race_save_" + std::to_string(::getpid()));
  fs::remove_all(dir);

  // Two generations of the same database with different schemas.
  auto make = [](size_t k) {
    auto g = gen::MakeDbgDataset(3);
    EXPECT_TRUE(g.ok());
    extract::ExtractorOptions opt;
    opt.target_num_types = k;
    auto r = extract::SchemaExtractor(opt).Run(*g);
    EXPECT_TRUE(r.ok());
    catalog::Workspace ws;
    ws.SetGraph(*g);
    ws.program = r->final_program;
    ws.assignment = r->recast.assignment;
    return ws;
  };
  catalog::Workspace gen_a = make(4);
  catalog::Workspace gen_b = make(8);

  StartGate gate;
  std::vector<std::thread> savers;
  for (int i = 0; i < 4; ++i) {
    savers.emplace_back([&, i] {
      gate.Wait();
      const catalog::Workspace& ws = (i % 2 == 0) ? gen_a : gen_b;
      for (int round = 0; round < 5; ++round) {
        ASSERT_OK(catalog::SaveWorkspace(ws, dir.string()));
      }
    });
  }
  gate.Open();
  for (auto& t : savers) t.join();

  // Whatever save landed last, the directory holds one coherent
  // generation: the load validates schema/assignment against the graph.
  ASSERT_OK_AND_ASSIGN(catalog::Workspace loaded,
                       catalog::LoadWorkspace(dir.string()));
  ASSERT_OK(loaded.Validate());
  const size_t n = loaded.program.NumTypes();
  EXPECT_TRUE(n == gen_a.program.NumTypes() || n == gen_b.program.NumTypes())
      << "mixed-generation directory: " << n << " types";
  fs::remove_all(dir);
}

}  // namespace
}  // namespace schemex
