#include <gtest/gtest.h>

#include "graph/data_graph.h"
#include "graph/graph_builder.h"
#include "graph/graph_io.h"
#include "graph/graph_stats.h"
#include "graph/label.h"
#include "tests/test_util.h"

namespace schemex::graph {
namespace {

TEST(LabelInternerTest, InternIsIdempotent) {
  LabelInterner li;
  LabelId a = li.Intern("alpha");
  LabelId b = li.Intern("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(li.Intern("alpha"), a);
  EXPECT_EQ(li.size(), 2u);
  EXPECT_EQ(li.Name(a), "alpha");
  EXPECT_EQ(li.Find("beta"), b);
  EXPECT_EQ(li.Find("gamma"), kInvalidLabel);
}

TEST(DataGraphTest, AddObjectsAndEdges) {
  DataGraph g;
  ObjectId c = g.AddComplex("c");
  ObjectId a = g.AddAtomic("42", "a");
  EXPECT_TRUE(g.IsComplex(c));
  EXPECT_TRUE(g.IsAtomic(a));
  EXPECT_EQ(g.Value(a), "42");
  EXPECT_EQ(g.Name(c), "c");
  ASSERT_OK(g.AddEdge(c, a, "val"));
  EXPECT_EQ(g.NumEdges(), 1u);
  EXPECT_EQ(g.NumComplexObjects(), 1u);
  EXPECT_EQ(g.NumAtomicObjects(), 1u);
  LabelId val = g.labels().Find("val");
  EXPECT_TRUE(g.HasEdge(c, a, val));
  EXPECT_TRUE(g.HasEdgeToAtomic(c, val));
  ASSERT_OK(g.Validate());
}

TEST(DataGraphTest, AtomicObjectsCannotHaveOutEdges) {
  DataGraph g;
  ObjectId c = g.AddComplex();
  ObjectId a = g.AddAtomic("v");
  util::Status st = g.AddEdge(a, c, "x");
  EXPECT_EQ(st.code(), util::StatusCode::kFailedPrecondition);
}

TEST(DataGraphTest, DuplicateEdgeRejected) {
  DataGraph g;
  ObjectId c1 = g.AddComplex();
  ObjectId c2 = g.AddComplex();
  ASSERT_OK(g.AddEdge(c1, c2, "x"));
  EXPECT_EQ(g.AddEdge(c1, c2, "x").code(), util::StatusCode::kAlreadyExists);
  // Same endpoints, different label: fine (paper: at most one edge per
  // label between a pair).
  ASSERT_OK(g.AddEdge(c1, c2, "y"));
  EXPECT_EQ(g.NumEdges(), 2u);
}

TEST(DataGraphTest, OutOfRangeIdsRejected) {
  DataGraph g;
  ObjectId c = g.AddComplex();
  LabelId l = g.InternLabel("x");
  EXPECT_EQ(g.AddEdge(c, 99, l).code(), util::StatusCode::kInvalidArgument);
  EXPECT_EQ(g.AddEdge(99, c, l).code(), util::StatusCode::kInvalidArgument);
  EXPECT_EQ(g.AddEdge(c, c, 99).code(), util::StatusCode::kInvalidArgument);
}

TEST(DataGraphTest, RemoveEdgeMaintainsBothIndexes) {
  DataGraph g;
  ObjectId c1 = g.AddComplex();
  ObjectId c2 = g.AddComplex();
  ASSERT_OK(g.AddEdge(c1, c2, "x"));
  LabelId x = g.labels().Find("x");
  ASSERT_OK(g.RemoveEdge(c1, c2, x));
  EXPECT_EQ(g.NumEdges(), 0u);
  EXPECT_TRUE(g.OutEdges(c1).empty());
  EXPECT_TRUE(g.InEdges(c2).empty());
  EXPECT_EQ(g.RemoveEdge(c1, c2, x).code(), util::StatusCode::kNotFound);
  ASSERT_OK(g.Validate());
}

TEST(DataGraphTest, AdjacencyIsSortedAndSymmetric) {
  DataGraph g = test::MakeFigure2Database();
  ASSERT_OK(g.Validate());
  for (ObjectId o = 0; o < g.NumObjects(); ++o) {
    auto out = g.OutEdges(o);
    for (size_t i = 1; i < out.size(); ++i) {
      EXPECT_LE(out[i - 1], out[i]);
    }
  }
}

TEST(DataGraphTest, BipartiteDetection) {
  DataGraph flat;
  ObjectId c = flat.AddComplex();
  ASSERT_OK(flat.AddEdge(c, flat.AddAtomic("v"), "x"));
  EXPECT_TRUE(flat.IsBipartite());

  DataGraph deep = test::MakeFigure2Database();
  EXPECT_FALSE(deep.IsBipartite());
}

TEST(GraphBuilderTest, ImplicitComplexCreation) {
  GraphBuilder b;
  ASSERT_OK(b.Edge("x", "knows", "y"));
  EXPECT_TRUE(b.Has("x"));
  EXPECT_TRUE(b.Has("y"));
  util::Status st;
  DataGraph g = std::move(b).Build(&st);
  ASSERT_OK(st);
  EXPECT_EQ(g.NumComplexObjects(), 2u);
  EXPECT_EQ(g.NumEdges(), 1u);
}

TEST(GraphBuilderTest, AtomicNameConflicts) {
  GraphBuilder b;
  ASSERT_OK(b.Atomic("a", "1"));
  EXPECT_EQ(b.Atomic("a", "2").code(), util::StatusCode::kAlreadyExists);
  EXPECT_EQ(b.Complex("a").code(), util::StatusCode::kAlreadyExists);
  util::Status st;
  std::move(b).Build(&st);
  EXPECT_FALSE(st.ok());  // first error surfaced
}

TEST(GraphBuilderTest, EdgeFromAtomicFails) {
  GraphBuilder b;
  ASSERT_OK(b.Atomic("a", "1"));
  EXPECT_EQ(b.Edge("a", "x", "b").code(),
            util::StatusCode::kFailedPrecondition);
}

TEST(GraphIoTest, RoundTrip) {
  DataGraph g = test::MakeFigure2Database();
  std::string text = WriteGraph(g);
  ASSERT_OK_AND_ASSIGN(DataGraph g2, ReadGraph(text));
  EXPECT_EQ(g2.NumObjects(), g.NumObjects());
  EXPECT_EQ(g2.NumEdges(), g.NumEdges());
  EXPECT_EQ(g2.NumAtomicObjects(), g.NumAtomicObjects());
  // Content round-trips too (names preserved).
  EXPECT_EQ(WriteGraph(g2), text);
}

TEST(GraphIoTest, ValueEscaping) {
  DataGraph g;
  ObjectId c = g.AddComplex("c");
  ObjectId a = g.AddAtomic("line\n\"quoted\" \\slash", "a");
  ASSERT_OK(g.AddEdge(c, a, "v"));
  ASSERT_OK_AND_ASSIGN(DataGraph g2, ReadGraph(WriteGraph(g)));
  EXPECT_EQ(g2.Value(1), "line\n\"quoted\" \\slash");
}

TEST(GraphIoTest, ParseErrors) {
  EXPECT_FALSE(ReadGraph("bogus line").ok());
  EXPECT_FALSE(ReadGraph("atomic x").ok());
  EXPECT_FALSE(ReadGraph("atomic x \"unterminated").ok());
  EXPECT_FALSE(ReadGraph("edge a b").ok());
  EXPECT_FALSE(ReadGraph("complex").ok());
  // Comments and blanks are fine.
  EXPECT_TRUE(ReadGraph("# hello\n\ncomplex x\n").ok());
}

TEST(GraphIoTest, UnnamedObjectsGetSynthesizedNames) {
  DataGraph g;
  ObjectId c = g.AddComplex();
  ASSERT_OK(g.AddEdge(c, g.AddAtomic("v"), "x"));
  ASSERT_OK_AND_ASSIGN(DataGraph g2, ReadGraph(WriteGraph(g)));
  EXPECT_EQ(g2.NumObjects(), 2u);
  EXPECT_EQ(g2.NumEdges(), 1u);
}

TEST(GraphStatsTest, CountsAndHistogram) {
  DataGraph g = test::MakeFigure2Database();
  GraphStats s = ComputeStats(g);
  EXPECT_EQ(s.num_objects, 8u);
  EXPECT_EQ(s.num_complex, 4u);
  EXPECT_EQ(s.num_atomic, 4u);
  EXPECT_EQ(s.num_edges, 8u);
  EXPECT_EQ(s.num_labels, 3u);
  EXPECT_FALSE(s.bipartite);
  LabelId name = g.labels().Find("name");
  EXPECT_EQ(s.label_histogram[name], 4u);
  EXPECT_EQ(s.num_roots, 0u);  // everyone has incoming edges
  EXPECT_FALSE(s.ToString(g).empty());
}

TEST(GraphStatsTest, RootsCounted) {
  DataGraph g = test::MakeFigure4Database();
  GraphStats s = ComputeStats(g);
  EXPECT_EQ(s.num_roots, 1u);  // o1
  EXPECT_EQ(s.max_out_degree, 3u);
  EXPECT_EQ(s.max_in_degree, 2u);  // o6 has two incoming b edges
}

}  // namespace
}  // namespace schemex::graph
