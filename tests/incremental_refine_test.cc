// IncrementalRefine identity suite: re-refining a previous partition
// over a mutated graph must be *bit-identical* — same program, block
// names, homes, weights — to a cold refinement of the mutated graph, at
// every thread count, whether the incremental path propagates or falls
// back, and over both the overlay and its compacted form.

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "gen/dbg.h"
#include "graph/data_graph.h"
#include "graph/delta_overlay.h"
#include "graph/frozen_graph.h"
#include "graph/graph_view.h"
#include "tests/test_util.h"
#include "typing/incremental_refine.h"
#include "typing/perfect_typing.h"

namespace schemex::typing {
namespace {

using graph::DataGraph;
using graph::DeltaOverlay;
using graph::GraphView;
using graph::ObjectId;

void ExpectSameTyping(const PerfectTypingResult& want,
                      const PerfectTypingResult& got, const char* what) {
  EXPECT_EQ(want.program, got.program) << what << ": program drifted";
  EXPECT_EQ(want.home, got.home) << what << ": homes drifted";
  EXPECT_EQ(want.weight, got.weight) << what << ": weights drifted";
}

/// Cold reference over `g` (the engine the incremental path is pinned
/// against, itself pinned to the sequential reference elsewhere).
PerfectTypingResult Cold(GraphView g, size_t threads) {
  ExecOptions exec;
  exec.num_threads = threads;
  auto r = PerfectTypingViaHashRefinement(g, exec);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return *std::move(r);
}

/// Applies `mutate` to a fresh overlay over the seed-`seed` DBG graph
/// and checks incremental == cold on overlay and compacted forms across
/// thread counts.
template <typename Mutator>
void CheckDelta(uint64_t seed, Mutator mutate,
                const IncrementalRefineOptions& base_opts = {},
                bool expect_fallback = false) {
  ASSERT_OK_AND_ASSIGN(DataGraph base, gen::MakeDbgDataset(seed));
  auto frozen = Freeze(base);
  PerfectTypingResult previous = Cold(GraphView(*frozen), 1);

  DeltaOverlay ov(frozen);
  mutate(ov);
  ASSERT_OK(ov.Validate());
  std::vector<ObjectId> touched = ov.TouchedComplexObjects();

  PerfectTypingResult cold = Cold(GraphView(ov), 1);
  auto compacted = ov.Compact();

  for (size_t threads : {1, 2, 4}) {
    IncrementalRefineOptions opts = base_opts;
    opts.exec.num_threads = threads;
    for (bool use_compacted : {false, true}) {
      GraphView g = use_compacted ? GraphView(*compacted) : GraphView(ov);
      IncrementalRefineStats stats;
      auto inc = IncrementalRefine(g, previous, touched, opts, &stats);
      ASSERT_TRUE(inc.ok()) << inc.status().ToString();
      std::string what = "seed " + std::to_string(seed) + ", threads " +
                         std::to_string(threads) +
                         (use_compacted ? ", compacted" : ", overlay");
      ExpectSameTyping(cold, *inc, what.c_str());
      if (expect_fallback) {
        EXPECT_TRUE(stats.fell_back) << what;
        EXPECT_FALSE(stats.fallback_reason.empty()) << what;
      }
    }
  }
}

/// Random mixed delta: new objects, new edges (existing + fresh labels),
/// deletions. Exercises splits, merges, and nursery typing together.
void RandomDelta(DeltaOverlay& ov, uint64_t rng_seed, int ops) {
  std::mt19937 rng(rng_seed);
  auto rnd = [&](size_t n) { return static_cast<uint32_t>(rng() % n); };
  std::vector<ObjectId> complexes;
  for (ObjectId o = 0; o < ov.NumObjects(); ++o) {
    if (ov.IsComplex(o)) complexes.push_back(o);
  }
  for (int i = 0; i < ops; ++i) {
    int kind = static_cast<int>(rng() % 5);
    if (kind == 0) {
      ObjectId c = ov.AddComplex();
      // Give the arrival a picture so it lands in (or founds) a block.
      (void)ov.AddEdge(complexes[rnd(complexes.size())], c, "ref");
      (void)ov.AddEdge(c, complexes[rnd(complexes.size())], "ref");
      complexes.push_back(c);
    } else if (kind == 1) {
      ObjectId a = ov.AddAtomic("v" + std::to_string(i));
      (void)ov.AddEdge(complexes[rnd(complexes.size())], a, "attr");
    } else if (kind == 2) {
      (void)ov.AddEdge(complexes[rnd(complexes.size())],
                       rnd(ov.NumObjects()),
                       "l" + std::to_string(rng() % 4));
    } else {
      ObjectId from = complexes[rnd(complexes.size())];
      auto out = ov.OutEdges(from);
      if (out.empty()) continue;
      auto e = out[rnd(out.size())];
      (void)ov.RemoveEdge(from, e.other, e.label);
    }
  }
}

TEST(IncrementalRefineTest, EmptyDeltaIsIdentity) {
  CheckDelta(3, [](DeltaOverlay&) {});
}

TEST(IncrementalRefineTest, RandomDeltasAcrossSeeds) {
  for (uint64_t seed : {3u, 7u, 11u}) {
    CheckDelta(seed, [&](DeltaOverlay& ov) {
      RandomDelta(ov, seed * 131 + 17, 30);
    });
  }
}

TEST(IncrementalRefineTest, DeletionMergesBlocks) {
  // Deleting the distinguishing edges of objects in a split-off block
  // must merge it back — the quotient-coarsening pass, not plain
  // refinement, recovers this.
  CheckDelta(5, [](DeltaOverlay& ov) {
    // Find a complex object with >= 2 out edges and strip one label's
    // edges so its picture collapses toward a sibling's.
    for (ObjectId o = 0; o < ov.NumObjects(); ++o) {
      if (!ov.IsComplex(o)) continue;
      auto out = ov.OutEdges(o);
      if (out.size() < 2) continue;
      (void)ov.RemoveEdge(o, out.back().other, out.back().label);
      break;
    }
  });
}

TEST(IncrementalRefineTest, MutuallyReferentialFreshObjects) {
  // A cycle of fresh objects referencing each other: every one starts
  // in the nursery and their signatures chase each other's block ids —
  // the round cap plus coarsening must still land on the cold result.
  CheckDelta(3, [](DeltaOverlay& ov) {
    ObjectId a = ov.AddComplex("a");
    ObjectId b = ov.AddComplex("b");
    ObjectId c = ov.AddComplex("c");
    ASSERT_OK(ov.AddEdge(a, b, "next"));
    ASSERT_OK(ov.AddEdge(b, c, "next"));
    ASSERT_OK(ov.AddEdge(c, a, "next"));
    ASSERT_OK(ov.AddEdge(0, a, "entry"));
  });
}

TEST(IncrementalRefineTest, FallbackPinnedByZeroDirtyBudget) {
  // max_dirty_fraction = 0 forces the fallback on any non-empty delta;
  // the contract (identical result) must hold regardless.
  IncrementalRefineOptions opts;
  opts.max_dirty_fraction = 0.0;
  CheckDelta(
      7,
      [](DeltaOverlay& ov) { RandomDelta(ov, 99, 20); },
      opts, /*expect_fallback=*/true);
}

TEST(IncrementalRefineTest, ForcedHashCollisions) {
  // All-colliding hashes route every signature through the exact
  // equality path; results must not change.
  IncrementalRefineOptions opts;
  opts.exec.debug_force_hash_collisions = true;
  CheckDelta(11, [](DeltaOverlay& ov) { RandomDelta(ov, 5, 25); }, opts);
}

TEST(IncrementalRefineTest, SequentialReferenceAgreesOnMutatedGraph) {
  // Cross-engine anchor: the sequential reference refinement over the
  // mutated graph matches the incremental result exactly (hash
  // refinement is pinned to it elsewhere; this closes the triangle).
  ASSERT_OK_AND_ASSIGN(DataGraph base, gen::MakeDbgDataset(3));
  auto frozen = Freeze(base);
  PerfectTypingResult previous = Cold(GraphView(*frozen), 1);
  DeltaOverlay ov(frozen);
  RandomDelta(ov, 42, 20);
  auto inc =
      IncrementalRefine(GraphView(ov), previous, ov.TouchedComplexObjects());
  ASSERT_TRUE(inc.ok()) << inc.status().ToString();
  auto seq = PerfectTypingViaRefinement(GraphView(ov));
  ASSERT_TRUE(seq.ok()) << seq.status().ToString();
  ExpectSameTyping(*seq, *inc, "sequential reference");
}

TEST(IncrementalRefineTest, RejectsInvalidInputs) {
  ASSERT_OK_AND_ASSIGN(DataGraph base, gen::MakeDbgDataset(3));
  auto frozen = Freeze(base);
  PerfectTypingResult previous = Cold(GraphView(*frozen), 1);

  // Touched id out of range.
  std::vector<ObjectId> bogus{static_cast<ObjectId>(frozen->NumObjects())};
  auto r = IncrementalRefine(GraphView(*frozen), previous, bogus);
  EXPECT_EQ(r.status().code(), util::StatusCode::kInvalidArgument);

  // Previous partition larger than the graph.
  PerfectTypingResult oversized = previous;
  oversized.home.resize(frozen->NumObjects() + 1, kInvalidType);
  auto r2 = IncrementalRefine(GraphView(*frozen), oversized, {});
  EXPECT_EQ(r2.status().code(), util::StatusCode::kInvalidArgument);

  // Empty previous partition on a non-empty graph: safe fallback.
  PerfectTypingResult empty;
  IncrementalRefineStats stats;
  auto r3 = IncrementalRefine(GraphView(*frozen), empty, {}, {}, &stats);
  ASSERT_TRUE(r3.ok()) << r3.status().ToString();
  EXPECT_TRUE(stats.fell_back);
  PerfectTypingResult cold = Cold(GraphView(*frozen), 1);
  ExpectSameTyping(cold, *r3, "empty-previous fallback");
}

}  // namespace
}  // namespace schemex::typing
