// Parallel Stage 1 correctness: the sharded hash-refinement and the
// parallel GFP must be *bit-identical* to their sequential references for
// every thread count — block ids included, not just the partition — and
// cancellation must fire inside the algorithms, not only at stage
// boundaries.

#include <atomic>
#include <vector>

#include <gtest/gtest.h>

#include "extract/extractor.h"
#include "gen/dbg.h"
#include "gen/random_graph.h"
#include "gen/spec.h"
#include "graph/graph_builder.h"
#include "test_util.h"
#include "typing/gfp.h"
#include "typing/perfect_typing.h"
#include "util/parallel_for.h"

namespace schemex {
namespace {

/// Asserts a parallel result matches the sequential reference exactly:
/// same home ids, same program (type order and signatures), same weights.
void ExpectIdentical(const typing::PerfectTypingResult& got,
                     const typing::PerfectTypingResult& want) {
  EXPECT_EQ(got.home, want.home);
  EXPECT_EQ(got.weight, want.weight);
  EXPECT_EQ(got.program, want.program);
}

class ParallelRefinementProperty : public ::testing::TestWithParam<uint64_t> {
 protected:
  graph::DataGraph MakeGraph() const {
    gen::RandomGraphOptions opt;
    opt.num_complex = 150;
    opt.num_atomic = 80;
    opt.num_edges = 500;
    opt.num_labels = 4;
    opt.seed = GetParam();
    return gen::RandomGraph(opt);
  }
};

TEST_P(ParallelRefinementProperty, HashRefinementMatchesReference) {
  graph::DataGraph g = MakeGraph();
  ASSERT_OK_AND_ASSIGN(typing::PerfectTypingResult ref,
                       typing::PerfectTypingViaRefinement(g));
  for (size_t threads : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    typing::ExecOptions exec;
    exec.num_threads = threads;
    ASSERT_OK_AND_ASSIGN(typing::PerfectTypingResult got,
                         typing::PerfectTypingViaHashRefinement(g, exec));
    ExpectIdentical(got, ref);
  }
}

TEST_P(ParallelRefinementProperty, ForcedHashCollisionsStillExact) {
  // With every signature hashed to the same bucket, the exact
  // collision-verification fallback (previous-block compare + link-span
  // compare) carries the whole partition alone.
  graph::DataGraph g = MakeGraph();
  ASSERT_OK_AND_ASSIGN(typing::PerfectTypingResult ref,
                       typing::PerfectTypingViaRefinement(g));
  typing::ExecOptions exec;
  exec.num_threads = 2;
  exec.debug_force_hash_collisions = true;
  ASSERT_OK_AND_ASSIGN(typing::PerfectTypingResult got,
                       typing::PerfectTypingViaHashRefinement(g, exec));
  ExpectIdentical(got, ref);
}

TEST_P(ParallelRefinementProperty, ParallelGfpMatchesSequential) {
  graph::DataGraph g = MakeGraph();
  ASSERT_OK_AND_ASSIGN(typing::PerfectTypingResult stage1,
                       typing::PerfectTypingViaRefinement(g));
  ASSERT_OK_AND_ASSIGN(typing::Extents seq,
                       typing::ComputeGfp(stage1.program, g));
  for (size_t threads : {size_t{2}, size_t{4}}) {
    typing::ExecOptions exec;
    exec.num_threads = threads;
    typing::GfpStats stats;
    ASSERT_OK_AND_ASSIGN(
        typing::Extents par,
        typing::ComputeGfp(stage1.program, g, &stats, exec));
    EXPECT_EQ(par, seq);
    EXPECT_GT(stats.initial_candidates, 0u);
  }
}

TEST_P(ParallelRefinementProperty, GfpBasedTypingMatchesUnderThreads) {
  graph::DataGraph g = MakeGraph();
  ASSERT_OK_AND_ASSIGN(typing::PerfectTypingResult seq,
                       typing::PerfectTypingViaGfp(g));
  typing::ExecOptions exec;
  exec.num_threads = 4;
  ASSERT_OK_AND_ASSIGN(typing::PerfectTypingResult par,
                       typing::PerfectTypingViaGfp(g, exec));
  ExpectIdentical(par, seq);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelRefinementProperty,
                         ::testing::Values(1, 7, 42, 1234, 99991));

TEST(ParallelRefinement, DbgDatasetIdenticalAcrossThreadCounts) {
  // The paper's DBG-like database at 5x scale — structured data with a
  // real multi-round refinement, unlike the random graphs above.
  gen::DatasetSpec spec = gen::DbgSpec();
  for (auto& t : spec.types) t.count *= 5;
  ASSERT_OK_AND_ASSIGN(graph::DataGraph g, gen::Generate(spec, 4242));
  ASSERT_OK_AND_ASSIGN(typing::PerfectTypingResult ref,
                       typing::PerfectTypingViaRefinement(g));
  for (size_t threads : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    util::PoolRef pool(nullptr, threads);
    typing::ExecOptions exec;
    exec.num_threads = threads;
    exec.pool = pool.get();
    ASSERT_OK_AND_ASSIGN(typing::PerfectTypingResult got,
                         typing::PerfectTypingViaHashRefinement(g, exec));
    ExpectIdentical(got, ref);
  }
}

TEST(ParallelRefinement, CancellationBetweenRounds) {
  gen::DatasetSpec spec = gen::DbgSpec();
  ASSERT_OK_AND_ASSIGN(graph::DataGraph g, gen::Generate(spec, 4242));

  // Count how many rounds a full run polls, then cancel one poll early
  // on a fresh run — the abort must surface the hook's status verbatim.
  size_t total_polls = 0;
  typing::ExecOptions count_exec;
  count_exec.num_threads = 2;
  count_exec.check_cancel = [&total_polls] {
    ++total_polls;
    return util::Status::OK();
  };
  ASSERT_OK(typing::PerfectTypingViaHashRefinement(g, count_exec).status());
  ASSERT_GT(total_polls, 1u) << "expected a multi-round refinement";

  size_t polls = 0;
  const size_t cancel_at = total_polls - 1;
  typing::ExecOptions exec;
  exec.num_threads = 2;
  exec.check_cancel = [&polls, cancel_at] {
    return ++polls >= cancel_at
               ? util::Status::DeadlineExceeded("test cancel")
               : util::Status::OK();
  };
  auto result = typing::PerfectTypingViaHashRefinement(g, exec);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kDeadlineExceeded);
  EXPECT_EQ(result.status().message(), "test cancel");
}

TEST(ParallelGfp, WorklistPollsCancellation) {
  // Chain o0 -l-> o1 -l-> o2 with the recursive program t0 = {->l^t0}:
  // the prefilter admits {o0, o1}, the initial sweep evicts o1 (o2 was
  // never a candidate), and the worklist then pops (o1, t0). ComputeGfp
  // polls after the prefilter, after the sweep, and on the first pop —
  // so a hook that fails on its third call proves the *worklist* polls,
  // not just the phase boundaries.
  graph::GraphBuilder b;
  EXPECT_OK(b.Complex("o0"));
  EXPECT_OK(b.Complex("o1"));
  EXPECT_OK(b.Complex("o2"));
  EXPECT_OK(b.Edge("o0", "l", "o1"));
  EXPECT_OK(b.Edge("o1", "l", "o2"));
  util::Status st;
  graph::DataGraph g = std::move(b).Build(&st);
  ASSERT_OK(st);

  graph::LabelId l = g.labels().Find("l");
  ASSERT_NE(l, graph::kInvalidLabel);
  typing::TypingProgram program;
  program.AddType("t0", typing::TypeSignature::FromLinks(
                            {typing::TypedLink::Out(l, 0)}));

  // Sanity: uncancelled, the fixpoint is empty (no infinite chain).
  ASSERT_OK_AND_ASSIGN(typing::Extents m, typing::ComputeGfp(program, g));
  EXPECT_EQ(m.per_type[0].Count(), 0u);

  size_t polls = 0;
  typing::ExecOptions exec;
  exec.check_cancel = [&polls] {
    return ++polls >= 3 ? util::Status::DeadlineExceeded("worklist cancel")
                        : util::Status::OK();
  };
  auto cancelled = typing::ComputeGfp(program, g, nullptr, exec);
  ASSERT_FALSE(cancelled.ok());
  EXPECT_EQ(cancelled.status().code(), util::StatusCode::kDeadlineExceeded);
  EXPECT_EQ(polls, 3u);
}

TEST(ParallelExtractor, ParallelismKnobPreservesResults) {
  gen::DatasetSpec spec = gen::DbgSpec();
  for (auto& t : spec.types) t.count *= 2;
  ASSERT_OK_AND_ASSIGN(graph::DataGraph g, gen::Generate(spec, 7));

  extract::ExtractorOptions seq_opt;
  seq_opt.target_num_types = 6;
  seq_opt.parallelism = 1;
  ASSERT_OK_AND_ASSIGN(extract::ExtractionResult seq,
                       extract::SchemaExtractor(seq_opt).Run(g));

  extract::ExtractorOptions par_opt = seq_opt;
  par_opt.parallelism = 4;
  ASSERT_OK_AND_ASSIGN(extract::ExtractionResult par,
                       extract::SchemaExtractor(par_opt).Run(g));

  EXPECT_EQ(par.final_program, seq.final_program);
  EXPECT_EQ(par.final_homes, seq.final_homes);
  EXPECT_EQ(par.perfect.home, seq.perfect.home);
  EXPECT_EQ(par.defect.defect(), seq.defect.defect());

  // Per-stage timings are populated on both paths.
  for (const auto& r : {seq, par}) {
    EXPECT_GT(r.timings.total_ms, 0.0);
    EXPECT_GE(r.timings.total_ms, r.timings.stage1_ms);
    EXPECT_GE(r.timings.stage1_ms, 0.0);
    EXPECT_GE(r.timings.cluster_ms, 0.0);
    EXPECT_GE(r.timings.recast_ms, 0.0);
  }
}

TEST(ParallelExtractor, CancellationInsideStage1) {
  // A hook that fails from the very first poll aborts inside Stage 1 —
  // before any stage boundary — and the status propagates verbatim.
  gen::DatasetSpec spec = gen::DbgSpec();
  ASSERT_OK_AND_ASSIGN(graph::DataGraph g, gen::Generate(spec, 7));
  extract::ExtractorOptions opt;
  opt.parallelism = 2;
  std::atomic<size_t> polls{0};
  opt.check_cancel = [&polls] {
    ++polls;
    return util::Status::DeadlineExceeded("mid-stage cancel");
  };
  auto result = extract::SchemaExtractor(opt).Run(g);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kDeadlineExceeded);
  EXPECT_GE(polls.load(), 1u);
}

}  // namespace
}  // namespace schemex
