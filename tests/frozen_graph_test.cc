#include "graph/frozen_graph.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>
#include <vector>

#include "gen/random_graph.h"
#include "graph/graph_stats.h"
#include "graph/graph_view.h"
#include "tests/test_util.h"

namespace schemex::graph {
namespace {

/// Asserts that `f` answers every read query exactly like `g`.
void ExpectAgrees(const DataGraph& g, const FrozenGraph& f) {
  ASSERT_EQ(f.NumObjects(), g.NumObjects());
  EXPECT_EQ(f.NumComplexObjects(), g.NumComplexObjects());
  EXPECT_EQ(f.NumAtomicObjects(), g.NumAtomicObjects());
  EXPECT_EQ(f.NumEdges(), g.NumEdges());
  EXPECT_EQ(f.IsBipartite(), g.IsBipartite());

  ASSERT_EQ(f.labels().size(), g.labels().size());
  for (LabelId l = 0; l < g.labels().size(); ++l) {
    EXPECT_EQ(f.labels().Name(l), g.labels().Name(l));
  }

  for (ObjectId o = 0; o < g.NumObjects(); ++o) {
    EXPECT_EQ(f.IsAtomic(o), g.IsAtomic(o)) << "object " << o;
    EXPECT_EQ(f.IsComplex(o), g.IsComplex(o)) << "object " << o;
    EXPECT_EQ(f.Value(o), g.Value(o)) << "object " << o;
    EXPECT_EQ(f.Name(o), g.Name(o)) << "object " << o;

    std::span<const HalfEdge> fo = f.OutEdges(o), go = g.OutEdges(o);
    ASSERT_EQ(fo.size(), go.size()) << "out-degree of " << o;
    EXPECT_TRUE(std::equal(fo.begin(), fo.end(), go.begin()))
        << "out-edges of " << o;

    std::span<const HalfEdge> fi = f.InEdges(o), gi = g.InEdges(o);
    ASSERT_EQ(fi.size(), gi.size()) << "in-degree of " << o;
    EXPECT_TRUE(std::equal(fi.begin(), fi.end(), gi.begin()))
        << "in-edges of " << o;

    // Point lookups: every real out-edge is found, and every label
    // answers HasEdgeToAtomic identically.
    for (const HalfEdge& e : go) {
      EXPECT_TRUE(f.HasEdge(o, e.other, e.label));
    }
    for (LabelId l = 0; l < g.labels().size(); ++l) {
      EXPECT_EQ(f.HasEdgeToAtomic(o, l), g.HasEdgeToAtomic(o, l))
          << "object " << o << " label " << l;
    }
  }
}

TEST(FrozenGraphTest, RandomGraphRoundTrip) {
  // The property: for a variety of shapes (sparse, dense, atomic-heavy,
  // empty label table usage), freezing preserves every observable.
  struct Shape {
    size_t complex, atomic, edges, labels;
    double atomic_frac;
  };
  const Shape shapes[] = {
      {40, 40, 120, 5, 0.5},  {10, 90, 200, 3, 0.9}, {90, 10, 300, 8, 0.1},
      {1, 1, 1, 1, 1.0},      {50, 0, 100, 4, 0.0},  {200, 200, 1200, 12, 0.5},
  };
  uint64_t seed = 11;
  for (const Shape& s : shapes) {
    gen::RandomGraphOptions opt;
    opt.num_complex = s.complex;
    opt.num_atomic = s.atomic;
    opt.num_edges = s.edges;
    opt.num_labels = s.labels;
    opt.atomic_target_fraction = s.atomic_frac;
    opt.seed = seed++;
    DataGraph g = gen::RandomGraph(opt);
    ASSERT_OK(g.Validate());

    auto f = Freeze(g);
    ASSERT_NE(f, nullptr);
    ASSERT_OK(f->Validate());
    ExpectAgrees(g, *f);

    // Negative point lookups: random non-edges answer false on both.
    std::mt19937_64 rng(opt.seed);
    for (int i = 0; i < 200; ++i) {
      ObjectId from = static_cast<ObjectId>(rng() % g.NumObjects());
      ObjectId to = static_cast<ObjectId>(rng() % g.NumObjects());
      LabelId l = static_cast<LabelId>(rng() % s.labels);
      EXPECT_EQ(f->HasEdge(from, to, l), g.HasEdge(from, to, l));
    }
  }
}

TEST(FrozenGraphTest, GraphViewDispatchesIdentically) {
  gen::RandomGraphOptions opt;
  opt.seed = 99;
  DataGraph g = gen::RandomGraph(opt);
  auto f = Freeze(g);

  GraphView vd(g), vf(*f);
  ASSERT_EQ(vd.NumObjects(), vf.NumObjects());
  for (ObjectId o = 0; o < g.NumObjects(); ++o) {
    EXPECT_EQ(vd.IsAtomic(o), vf.IsAtomic(o));
    EXPECT_EQ(vd.Value(o), vf.Value(o));
    EXPECT_EQ(vd.Name(o), vf.Name(o));
    std::span<const HalfEdge> a = vd.OutEdges(o), b = vf.OutEdges(o);
    ASSERT_EQ(a.size(), b.size());
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()));
  }
  // Derived statistics agree through the view as well.
  GraphStats sd = ComputeStats(vd), sf = ComputeStats(vf);
  EXPECT_EQ(sd.num_edges, sf.num_edges);
  EXPECT_EQ(sd.num_roots, sf.num_roots);
  EXPECT_DOUBLE_EQ(sd.avg_out_degree, sf.avg_out_degree);
}

TEST(FrozenGraphTest, EmptyGraph) {
  DataGraph g;
  auto f = Freeze(g);
  ASSERT_OK(f->Validate());
  EXPECT_EQ(f->NumObjects(), 0u);
  EXPECT_EQ(f->NumEdges(), 0u);
  EXPECT_TRUE(f->IsBipartite());
  EXPECT_GE(f->MemoryUsage(), 0u);
}

TEST(FrozenGraphTest, IdsAreProcessUnique) {
  DataGraph g = test::MakeFigure2Database();
  std::set<uint64_t> ids;
  for (int i = 0; i < 8; ++i) {
    ids.insert(Freeze(g)->id());
  }
  // Eight freezes of the same source are eight distinct snapshots.
  EXPECT_EQ(ids.size(), 8u);
}

TEST(FrozenGraphTest, MemoryUsageCoversEdgesAndArena) {
  gen::RandomGraphOptions opt;
  opt.num_complex = 500;
  opt.num_atomic = 500;
  opt.num_edges = 3000;
  DataGraph g = gen::RandomGraph(opt);
  auto f = Freeze(g);
  // Both CSR directions alone are 2 * edges * sizeof(HalfEdge).
  EXPECT_GE(f->MemoryUsage(), 2 * f->NumEdges() * sizeof(HalfEdge));
  // The arena holds at least every atomic value's bytes.
  size_t value_bytes = 0;
  for (ObjectId o = 0; o < g.NumObjects(); ++o) {
    value_bytes += g.Value(o).size();
  }
  EXPECT_GE(f->MemoryUsage(), value_bytes);
}

}  // namespace
}  // namespace schemex::graph
