// Concurrent stress harness for the TCP front end, written to run under
// ASan+UBSan in CI: >= 8 client threads, >= 500 total requests of mixed
// verbs against multiple workspaces, forced mid-request disconnects, and
// a final graceful-drain shutdown with a request still in flight. Any
// cross-talk between connections shows up as an id or workspace-echo
// mismatch; any lifetime bug shows up as a sanitizer report.

#include "service/tcp_server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <random>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "catalog/workspace.h"
#include "extract/extractor.h"
#include "gen/dbg.h"
#include "json/json.h"
#include "service/server.h"
#include "service/tcp_client.h"
#include "tests/test_util.h"
#include "util/string_util.h"

namespace schemex::service {
namespace {

using json::Value;

const Value& Field(const Value& obj, const std::string& key) {
  auto it = obj.AsObject().find(key);
  EXPECT_NE(it, obj.AsObject().end()) << "missing field " << key;
  static const Value kNull;
  return it == obj.AsObject().end() ? kNull : it->second;
}

catalog::Workspace MakeDbgWorkspace(uint64_t seed) {
  auto g = gen::MakeDbgDataset(seed);
  EXPECT_TRUE(g.ok());
  extract::ExtractorOptions opt;
  opt.target_num_types = 6;
  auto r = extract::SchemaExtractor(opt).Run(*g);
  EXPECT_TRUE(r.ok());
  catalog::Workspace ws;
  ws.SetGraph(*g);
  ws.program = r->final_program;
  ws.assignment = r->recast.assignment;
  return ws;
}

TEST(TcpStressTest, ConcurrentClientsWithDisconnectsAndDrain) {
  constexpr int kThreads = 10;          // >= 8 concurrent connections
  constexpr int kPerThread = 60;        // 600 requests >= 500 total
  const char* kWorkspaces[] = {"ws0", "ws1", "ws2"};
  const char* kQueries[] = {"project.name", "author.name", "*.email",
                            "member"};

  Server server;
  for (int w = 0; w < 3; ++w) {
    ASSERT_OK(server.InstallWorkspace(kWorkspaces[w],
                                      MakeDbgWorkspace(3 + 2 * w)));
  }
  TcpServer tcp(&server);
  ASSERT_OK(tcp.Start());
  const uint16_t port = tcp.port();

  std::atomic<int> responses_ok{0};
  std::atomic<int> responses_err{0};
  std::atomic<int> mismatches{0};
  std::atomic<int> hard_failures{0};

  auto worker = [&](int t) {
    std::mt19937 rng(1234 + t);
    const bool disconnector = (t % 3 == 0);  // threads 0,3,6,9 drop lines
    auto client = TcpClient::Connect("127.0.0.1", port);
    if (!client.ok()) {
      ++hard_failures;
      return;
    }
    const std::string ws = kWorkspaces[t % 3];
    int sent_since_connect = 0;
    std::set<int64_t> outstanding;

    auto read_outstanding = [&]() -> bool {
      while (!outstanding.empty()) {
        auto line = client->ReadLine(/*timeout_s=*/60.0);
        if (!line.ok()) {
          ADD_FAILURE() << "thread " << t << ": " << line.status();
          ++hard_failures;
          return false;
        }
        auto v = json::Parse(*line);
        if (!v.ok()) {
          ADD_FAILURE() << "unparseable response: " << *line;
          ++hard_failures;
          return false;
        }
        int64_t id = static_cast<int64_t>(Field(*v, "id").AsNumber());
        // Cross-talk check #1: the id must be one this connection sent
        // and is still waiting for.
        if (outstanding.erase(id) != 1) {
          ++mismatches;
          ADD_FAILURE() << "thread " << t << " got foreign id " << id;
          return false;
        }
        if (Field(*v, "ok").AsBool()) {
          ++responses_ok;
          // Cross-talk check #2: query/stats responses must echo this
          // connection's workspace, never a sibling's.
          const Value& result = Field(*v, "result");
          auto wit = result.AsObject().find("workspace");
          if (wit != result.AsObject().end() &&
              wit->second.AsString() != ws) {
            ++mismatches;
            ADD_FAILURE() << "thread " << t << " got workspace "
                          << wit->second.AsString() << ", want " << ws;
            return false;
          }
        } else {
          ++responses_err;
        }
      }
      return true;
    };

    for (int i = 0; i < kPerThread; ++i) {
      const int64_t id = static_cast<int64_t>(t) * 1000000 + i;
      std::string line;
      switch (i % 10) {
        case 7:
          line = util::StringPrintf("{\"id\":%lld,\"verb\":\"stats\"}",
                                    static_cast<long long>(id));
          break;
        case 8:
          line = util::StringPrintf(
              "{\"id\":%lld,\"verb\":\"list_workspaces\"}",
              static_cast<long long>(id));
          break;
        case 9:
          // Guaranteed error traffic: a workspace nobody installed.
          line = util::StringPrintf(
              "{\"id\":%lld,\"verb\":\"query\",\"params\":{\"workspace\":"
              "\"nope\",\"query\":\"a.b\"}}",
              static_cast<long long>(id));
          break;
        default:
          line = util::StringPrintf(
              "{\"id\":%lld,\"verb\":\"query\",\"params\":{\"workspace\":"
              "\"%s\",\"query\":\"%s\",\"limit\":3}}",
              static_cast<long long>(id), ws.c_str(),
              kQueries[(t + i) % 4]);
      }

      if (disconnector && i > 0 && i % 20 == 0) {
        // Forced mid-request disconnect: send a request (plus half of a
        // second one) and slam the connection without reading anything.
        // The server must absorb the orphaned work and the half line.
        (void)client->SendLine(line);
        (void)client->SendRaw("{\"id\":1,\"verb\":\"sta");
        client->Close();
        outstanding.clear();
        client = TcpClient::Connect("127.0.0.1", port);
        if (!client.ok()) {
          ++hard_failures;
          return;
        }
        sent_since_connect = 0;
        continue;
      }

      if (!client->SendLine(line).ok()) {
        ++hard_failures;
        return;
      }
      outstanding.insert(id);
      ++sent_since_connect;
      // Pipeline in small random batches so reads and writes interleave
      // differently on every thread.
      if (sent_since_connect >=
          std::uniform_int_distribution<int>(1, 6)(rng)) {
        if (!read_outstanding()) return;
        sent_since_connect = 0;
      }
    }
    read_outstanding();
  };

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) threads.emplace_back(worker, t);
  for (auto& t : threads) t.join();

  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(hard_failures.load(), 0);
  // Disconnector threads abandon some requests, but the total answered
  // load still clears the acceptance floor with a wide margin.
  EXPECT_GE(responses_ok.load() + responses_err.load(), 500);
  EXPECT_GT(responses_ok.load(), 0);
  EXPECT_GT(responses_err.load(), 0);  // the "nope" workspace traffic

  // Graceful drain with a request genuinely in flight: the response must
  // be flushed before the connection is torn down.
  auto last = TcpClient::Connect("127.0.0.1", port);
  ASSERT_TRUE(last.ok()) << last.status();
  ASSERT_OK(last->SendLine(
      "{\"id\":777,\"verb\":\"extract\",\"params\":{\"workspace\":\"ws0\","
      "\"k\":6}}"));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  std::thread shutdown([&] { tcp.Shutdown(); });
  auto line = last->ReadLine(/*timeout_s=*/60.0);
  shutdown.join();
  ASSERT_TRUE(line.ok()) << line.status();
  auto v = json::Parse(*line);
  ASSERT_TRUE(v.ok()) << *line;
  EXPECT_EQ(Field(*v, "id").AsNumber(), 777);
  EXPECT_TRUE(Field(*v, "ok").AsBool()) << *line;
  EXPECT_EQ(tcp.open_connections(), 0u);

  // Transport counters survived the riot and still make sense.
  int64_t accepted = 0, open = -1, bytes_in = 0, bytes_out = 0;
  for (const auto& [name, value] : server.metrics().CounterSnapshot()) {
    if (name == "tcp.connections_accepted") accepted = value;
    if (name == "tcp.connections_open") open = value;
    if (name == "tcp.bytes_in") bytes_in = value;
    if (name == "tcp.bytes_out") bytes_out = value;
  }
  EXPECT_GE(accepted, kThreads);
  EXPECT_EQ(open, 0);
  EXPECT_GT(bytes_in, 0);
  EXPECT_GT(bytes_out, 0);
}

}  // namespace
}  // namespace schemex::service
