#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>

#include "catalog/workspace.h"
#include "extract/extractor.h"
#include "gen/dbg.h"
#include "tests/test_util.h"
#include "typing/gfp.h"

namespace schemex::catalog {
namespace {

namespace fs = std::filesystem;

class CatalogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("schemex_ws_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
};

TEST_F(CatalogTest, SaveLoadRoundTrip) {
  auto g = gen::MakeDbgDataset(3);
  extract::ExtractorOptions opt;
  opt.target_num_types = 6;
  auto r = extract::SchemaExtractor(opt).Run(*g);
  ASSERT_TRUE(r.ok());

  Workspace ws;
  ws.SetGraph(*g);
  ws.program = r->final_program;
  ws.assignment = r->recast.assignment;
  ASSERT_OK(SaveWorkspace(ws, dir_.string()));
  EXPECT_TRUE(fs::exists(dir_ / "graph.sxg"));
  EXPECT_TRUE(fs::exists(dir_ / "schema.dl"));
  EXPECT_TRUE(fs::exists(dir_ / "assignment.tsv"));

  ASSERT_OK_AND_ASSIGN(Workspace back, LoadWorkspace(dir_.string()));
  EXPECT_EQ(back.graph->NumObjects(), g->NumObjects());
  EXPECT_EQ(back.graph->NumEdges(), g->NumEdges());
  EXPECT_EQ(back.program.NumTypes(), 6u);
  // Assignment content survives object-by-object.
  for (graph::ObjectId o = 0; o < g->NumObjects(); ++o) {
    EXPECT_EQ(back.assignment.TypesOf(o), r->recast.assignment.TypesOf(o))
        << "object " << o;
  }
  // The reloaded program types the reloaded graph the way the original
  // typed the original (extent sizes).
  ASSERT_OK_AND_ASSIGN(typing::Extents m1,
                       typing::ComputeGfp(r->final_program, *g));
  ASSERT_OK_AND_ASSIGN(typing::Extents m2,
                       typing::ComputeGfp(back.program, *back.graph));
  for (size_t t = 0; t < m1.per_type.size(); ++t) {
    EXPECT_EQ(m1.per_type[t].Count(), m2.per_type[t].Count());
  }
}

TEST_F(CatalogTest, GraphOnlyWorkspace) {
  Workspace ws;
  ws.SetGraph(test::MakeFigure2Database());
  ws.assignment = typing::TypeAssignment(ws.graph->NumObjects());
  ASSERT_OK(SaveWorkspace(ws, dir_.string()));
  // Remove the optional files: loading must still succeed.
  fs::remove(dir_ / "schema.dl");
  fs::remove(dir_ / "assignment.tsv");
  ASSERT_OK_AND_ASSIGN(Workspace back, LoadWorkspace(dir_.string()));
  EXPECT_EQ(back.program.NumTypes(), 0u);
  EXPECT_EQ(back.assignment.NumObjects(), ws.graph->NumObjects());
}

TEST_F(CatalogTest, MissingGraphIsAnError) {
  fs::create_directories(dir_);
  EXPECT_FALSE(LoadWorkspace(dir_.string()).ok());
  EXPECT_FALSE(LoadWorkspace((dir_ / "nope").string()).ok());
}

TEST_F(CatalogTest, ValidationCatchesInconsistency) {
  Workspace ws;
  ws.SetGraph(test::MakeFigure2Database());
  ws.assignment = typing::TypeAssignment(ws.graph->NumObjects());
  ws.assignment.Assign(0, 5);  // no such type
  EXPECT_EQ(ws.Validate().code(), util::StatusCode::kFailedPrecondition);
  EXPECT_FALSE(SaveWorkspace(ws, dir_.string()).ok());

  Workspace ws2;
  ws2.SetGraph(test::MakeFigure2Database());
  ws2.assignment = typing::TypeAssignment(3);  // wrong size
  EXPECT_FALSE(ws2.Validate().ok());

  Workspace ws3;  // no graph at all
  EXPECT_EQ(ws3.Validate().code(), util::StatusCode::kFailedPrecondition);
}

TEST_F(CatalogTest, CorruptAssignmentRejected) {
  Workspace ws;
  ws.SetGraph(test::MakeFigure2Database());
  ws.program.AddType("t", {});
  ws.assignment = typing::TypeAssignment(ws.graph->NumObjects());
  ws.assignment.Assign(0, 0);
  ASSERT_OK(SaveWorkspace(ws, dir_.string()));
  // Scribble over the assignment.
  {
    std::ofstream out(dir_ / "assignment.tsv");
    out << "999\t0\n";  // object id out of range
  }
  EXPECT_FALSE(LoadWorkspace(dir_.string()).ok());
  {
    std::ofstream out(dir_ / "assignment.tsv");
    out << "no tab here\n";
  }
  EXPECT_FALSE(LoadWorkspace(dir_.string()).ok());
}

TEST_F(CatalogTest, CorruptAssignmentVariants) {
  Workspace ws;
  // A real signature: an empty one would not survive the schema.dl
  // round-trip (datalog rules need at least one body atom). The label is
  // interned before freezing — the frozen table is immutable.
  graph::DataGraph g = test::MakeFigure2Database();
  graph::LabelId name = g.InternLabel("name");
  ws.SetGraph(g);
  ws.program.AddType(
      "t", typing::TypeSignature::FromLinks({typing::TypedLink::OutAtomic(name)}));
  ws.assignment = typing::TypeAssignment(ws.graph->NumObjects());
  ws.assignment.Assign(0, 0);
  ASSERT_OK(SaveWorkspace(ws, dir_.string()));

  auto scribble = [&](const char* text) {
    std::ofstream out(dir_ / "assignment.tsv");
    out << text;
  };
  // Non-numeric type token.
  scribble("0\tbanana\n");
  EXPECT_EQ(LoadWorkspace(dir_.string()).status().code(),
            util::StatusCode::kParseError);
  // Type id outside the program: parses but fails Validate.
  scribble("0\t7\n");
  EXPECT_EQ(LoadWorkspace(dir_.string()).status().code(),
            util::StatusCode::kFailedPrecondition);
  // Comments and blank lines are fine; a trailing junk line is not.
  scribble("# comment\n\n0\t0\n1\n");
  EXPECT_EQ(LoadWorkspace(dir_.string()).status().code(),
            util::StatusCode::kParseError);
  // A valid rewrite loads again.
  scribble("0\t0\n");
  EXPECT_TRUE(LoadWorkspace(dir_.string()).ok());
}

TEST_F(CatalogTest, GraphOnlyDirectoryLoadsEmptySchema) {
  // A directory holding just graph.sxg — e.g. freshly imported data that
  // the service has not extracted yet — loads with an empty program and
  // an all-untyped assignment sized to the graph.
  Workspace ws;
  ws.SetGraph(test::MakeFigure5Database());
  ws.assignment = typing::TypeAssignment(ws.graph->NumObjects());
  ASSERT_OK(SaveWorkspace(ws, dir_.string()));
  fs::remove(dir_ / "schema.dl");
  fs::remove(dir_ / "assignment.tsv");

  ASSERT_OK_AND_ASSIGN(Workspace back, LoadWorkspace(dir_.string()));
  EXPECT_EQ(back.program.NumTypes(), 0u);
  EXPECT_EQ(back.assignment.NumObjects(), ws.graph->NumObjects());
  EXPECT_EQ(back.assignment.NumTypedObjects(), 0u);
  EXPECT_OK(back.Validate());
}

TEST_F(CatalogTest, SaveLeavesNoTempFiles) {
  Workspace ws;
  ws.SetGraph(test::MakeFigure2Database());
  ws.assignment = typing::TypeAssignment(ws.graph->NumObjects());
  ASSERT_OK(SaveWorkspace(ws, dir_.string()));
  for (const auto& entry : fs::directory_iterator(dir_)) {
    EXPECT_NE(entry.path().extension(), ".tmp") << entry.path();
  }
}

TEST_F(CatalogTest, ConcurrentSaveAndLoadNeverTears) {
  // The service's cache-refresh path re-saves a workspace while another
  // thread may be loading it. Atomic per-file replacement guarantees a
  // reader sees complete files: every load either succeeds with a
  // self-consistent workspace or fails with a clean cross-generation
  // Validate/parse error — never a half-written graph.
  Workspace small;
  small.SetGraph(test::MakeFigure2Database());
  small.assignment = typing::TypeAssignment(small.graph->NumObjects());

  auto big_graph = gen::MakeDbgDataset(5);
  ASSERT_TRUE(big_graph.ok());
  Workspace big;
  big.SetGraph(*big_graph);
  big.assignment = typing::TypeAssignment(big.graph->NumObjects());

  ASSERT_OK(SaveWorkspace(small, dir_.string()));

  std::atomic<bool> stop{false};
  std::atomic<int> torn{0};
  std::thread reader([&] {
    while (!stop.load()) {
      auto ws = LoadWorkspace(dir_.string());
      if (!ws.ok()) continue;  // cross-generation pairing: clean error
      size_t n = ws->graph->NumObjects();
      if (n != small.graph->NumObjects() && n != big.graph->NumObjects()) {
        ++torn;  // a size matching neither generation = torn file
      }
      if (!ws->graph->Validate().ok()) ++torn;
    }
  });
  for (int i = 0; i < 30; ++i) {
    ASSERT_OK(SaveWorkspace(i % 2 == 0 ? big : small, dir_.string()));
  }
  stop = true;
  reader.join();
  EXPECT_EQ(torn.load(), 0);
}

}  // namespace
}  // namespace schemex::catalog
