#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "catalog/workspace.h"
#include "extract/extractor.h"
#include "gen/dbg.h"
#include "tests/test_util.h"
#include "typing/gfp.h"

namespace schemex::catalog {
namespace {

namespace fs = std::filesystem;

class CatalogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("schemex_ws_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
};

TEST_F(CatalogTest, SaveLoadRoundTrip) {
  auto g = gen::MakeDbgDataset(3);
  extract::ExtractorOptions opt;
  opt.target_num_types = 6;
  auto r = extract::SchemaExtractor(opt).Run(*g);
  ASSERT_TRUE(r.ok());

  Workspace ws;
  ws.graph = *g;
  ws.program = r->final_program;
  ws.assignment = r->recast.assignment;
  ASSERT_OK(SaveWorkspace(ws, dir_.string()));
  EXPECT_TRUE(fs::exists(dir_ / "graph.sxg"));
  EXPECT_TRUE(fs::exists(dir_ / "schema.dl"));
  EXPECT_TRUE(fs::exists(dir_ / "assignment.tsv"));

  ASSERT_OK_AND_ASSIGN(Workspace back, LoadWorkspace(dir_.string()));
  EXPECT_EQ(back.graph.NumObjects(), g->NumObjects());
  EXPECT_EQ(back.graph.NumEdges(), g->NumEdges());
  EXPECT_EQ(back.program.NumTypes(), 6u);
  // Assignment content survives object-by-object.
  for (graph::ObjectId o = 0; o < g->NumObjects(); ++o) {
    EXPECT_EQ(back.assignment.TypesOf(o), r->recast.assignment.TypesOf(o))
        << "object " << o;
  }
  // The reloaded program types the reloaded graph the way the original
  // typed the original (extent sizes).
  ASSERT_OK_AND_ASSIGN(typing::Extents m1,
                       typing::ComputeGfp(r->final_program, *g));
  ASSERT_OK_AND_ASSIGN(typing::Extents m2,
                       typing::ComputeGfp(back.program, back.graph));
  for (size_t t = 0; t < m1.per_type.size(); ++t) {
    EXPECT_EQ(m1.per_type[t].Count(), m2.per_type[t].Count());
  }
}

TEST_F(CatalogTest, GraphOnlyWorkspace) {
  Workspace ws;
  ws.graph = test::MakeFigure2Database();
  ws.assignment = typing::TypeAssignment(ws.graph.NumObjects());
  ASSERT_OK(SaveWorkspace(ws, dir_.string()));
  // Remove the optional files: loading must still succeed.
  fs::remove(dir_ / "schema.dl");
  fs::remove(dir_ / "assignment.tsv");
  ASSERT_OK_AND_ASSIGN(Workspace back, LoadWorkspace(dir_.string()));
  EXPECT_EQ(back.program.NumTypes(), 0u);
  EXPECT_EQ(back.assignment.NumObjects(), ws.graph.NumObjects());
}

TEST_F(CatalogTest, MissingGraphIsAnError) {
  fs::create_directories(dir_);
  EXPECT_FALSE(LoadWorkspace(dir_.string()).ok());
  EXPECT_FALSE(LoadWorkspace((dir_ / "nope").string()).ok());
}

TEST_F(CatalogTest, ValidationCatchesInconsistency) {
  Workspace ws;
  ws.graph = test::MakeFigure2Database();
  ws.assignment = typing::TypeAssignment(ws.graph.NumObjects());
  ws.assignment.Assign(0, 5);  // no such type
  EXPECT_EQ(ws.Validate().code(), util::StatusCode::kFailedPrecondition);
  EXPECT_FALSE(SaveWorkspace(ws, dir_.string()).ok());

  Workspace ws2;
  ws2.graph = test::MakeFigure2Database();
  ws2.assignment = typing::TypeAssignment(3);  // wrong size
  EXPECT_FALSE(ws2.Validate().ok());
}

TEST_F(CatalogTest, CorruptAssignmentRejected) {
  Workspace ws;
  ws.graph = test::MakeFigure2Database();
  ws.program.AddType("t", {});
  ws.assignment = typing::TypeAssignment(ws.graph.NumObjects());
  ws.assignment.Assign(0, 0);
  ASSERT_OK(SaveWorkspace(ws, dir_.string()));
  // Scribble over the assignment.
  {
    std::ofstream out(dir_ / "assignment.tsv");
    out << "999\t0\n";  // object id out of range
  }
  EXPECT_FALSE(LoadWorkspace(dir_.string()).ok());
  {
    std::ofstream out(dir_ / "assignment.tsv");
    out << "no tab here\n";
  }
  EXPECT_FALSE(LoadWorkspace(dir_.string()).ok());
}

}  // namespace
}  // namespace schemex::catalog
