#include <gtest/gtest.h>

#include "tests/test_util.h"
#include "typing/defect.h"
#include "typing/perfect_typing.h"

namespace schemex::typing {
namespace {

graph::ObjectId Obj(const graph::DataGraph& g, const char* name) {
  for (graph::ObjectId o = 0; o < g.NumObjects(); ++o) {
    if (g.Name(o) == name) return o;
  }
  return graph::kInvalidObject;
}

/// The typing program of Example 2.2 over the Figure 3 database:
///   type1 = ->a^2
///   type2 = <-a^1, ->b^0, ->c^0
///   type3 = ->b^0, ->d^0
class Example22 : public ::testing::Test {
 protected:
  void SetUp() override {
    g_ = test::MakeExample22Database();
    graph::LabelId a = g_.labels().Find("a");
    graph::LabelId b = g_.labels().Find("b");
    graph::LabelId c = g_.labels().Find("c");
    graph::LabelId d = g_.labels().Find("d");
    t1_ = p_.AddType("type1", {});
    t2_ = p_.AddType("type2", {});
    t3_ = p_.AddType("type3", {});
    p_.type(t1_).signature =
        TypeSignature::FromLinks({TypedLink::Out(a, t2_)});
    p_.type(t2_).signature = TypeSignature::FromLinks(
        {TypedLink::In(a, t1_), TypedLink::OutAtomic(b),
         TypedLink::OutAtomic(c)});
    p_.type(t3_).signature = TypeSignature::FromLinks(
        {TypedLink::OutAtomic(b), TypedLink::OutAtomic(d)});
    ASSERT_OK(p_.Validate());
    base_ = TypeAssignment(g_.NumObjects());
    base_.Assign(Obj(g_, "o1"), t1_);
    base_.Assign(Obj(g_, "o2"), t2_);
    base_.Assign(Obj(g_, "o3"), t3_);
  }

  graph::DataGraph g_;
  TypingProgram p_;
  TypeId t1_, t2_, t3_;
  TypeAssignment base_;
};

TEST_F(Example22, Tau1HasExcessOneDeficitOne) {
  // tau_1 maps o4 to type2: we must invent link(o1, o4, a) (deficit 1)
  // and disregard o4's d-link (excess 1) — defect 2, as in the paper.
  TypeAssignment tau1 = base_;
  tau1.Assign(Obj(g_, "o4"), t2_);
  DefectReport r = ComputeDefect(p_, g_, tau1, /*collect_facts=*/true);
  EXPECT_EQ(r.excess, 1u);
  EXPECT_EQ(r.deficit, 1u);
  EXPECT_EQ(r.defect(), 2u);

  // The invented fact is exactly link(o1, o4, a).
  ASSERT_EQ(r.invented_edges.size(), 1u);
  EXPECT_EQ(r.invented_edges[0].from, Obj(g_, "o1"));
  EXPECT_EQ(r.invented_edges[0].to, Obj(g_, "o4"));
  EXPECT_EQ(r.invented_edges[0].label, g_.labels().Find("a"));

  // The excess fact is o4's d-edge.
  ASSERT_EQ(r.excess_edges.size(), 1u);
  EXPECT_EQ(r.excess_edges[0].from, Obj(g_, "o4"));
  EXPECT_EQ(r.excess_edges[0].label, g_.labels().Find("d"));
}

TEST_F(Example22, Tau2HasExcessOneOnly) {
  // tau_2 maps o4 to type3: only o4's c-link is disregarded — defect 1.
  TypeAssignment tau2 = base_;
  tau2.Assign(Obj(g_, "o4"), t3_);
  DefectReport r = ComputeDefect(p_, g_, tau2, /*collect_facts=*/true);
  EXPECT_EQ(r.excess, 1u);
  EXPECT_EQ(r.deficit, 0u);
  ASSERT_EQ(r.excess_edges.size(), 1u);
  EXPECT_EQ(r.excess_edges[0].from, Obj(g_, "o4"));
  EXPECT_EQ(r.excess_edges[0].label, g_.labels().Find("c"));
}

TEST_F(Example22, BaseObjectsContributeNoDefect) {
  // o1..o3 fit their types perfectly; o4 unassigned means all its edges
  // are excess (3) but nothing else changes.
  DefectReport r = ComputeDefect(p_, g_, base_);
  EXPECT_EQ(r.deficit, 0u);
  EXPECT_EQ(r.excess, 3u);  // o4's b, c, d edges
}

TEST_F(Example22, ReportToStringMentionsBothComponents) {
  TypeAssignment tau1 = base_;
  tau1.Assign(Obj(g_, "o4"), t2_);
  DefectReport r = ComputeDefect(p_, g_, tau1);
  std::string s = r.ToString();
  EXPECT_NE(s.find("excess=1"), std::string::npos);
  EXPECT_NE(s.find("deficit=1"), std::string::npos);
  EXPECT_NE(s.find("defect=2"), std::string::npos);
}

TEST(DefectTest, GfpAssignmentHasZeroDeficit) {
  // §2 end: "the greatest fixpoint semantics may lead to excess but
  // cannot yield deficit."
  graph::DataGraph g = test::MakeFigure4Database();
  ASSERT_OK_AND_ASSIGN(PerfectTypingResult r, PerfectTypingViaGfp(g));
  ASSERT_OK_AND_ASSIGN(Extents m, PerfectTypingExtents(r, g));
  TypeAssignment tau = ExtentsToAssignment(m);
  EXPECT_EQ(ComputeDeficit(r.program, g, tau, false, nullptr), 0u);
}

TEST(DefectTest, PerfectTypingHasZeroDefect) {
  // The minimal perfect typing has no defect on its own database — for
  // both example databases.
  for (graph::DataGraph g :
       {test::MakeFigure2Database(), test::MakeFigure4Database()}) {
    ASSERT_OK_AND_ASSIGN(PerfectTypingResult r, PerfectTypingViaGfp(g));
    ASSERT_OK_AND_ASSIGN(Extents m, PerfectTypingExtents(r, g));
    DefectReport report =
        ComputeDefect(r.program, g, ExtentsToAssignment(m));
    EXPECT_EQ(report.defect(), 0u);
  }
}

TEST(DefectTest, UntypedGraphIsAllExcess) {
  graph::DataGraph g = test::MakeFigure2Database();
  TypingProgram empty_program;
  TypeAssignment tau(g.NumObjects());
  DefectReport r = ComputeDefect(empty_program, g, tau);
  EXPECT_EQ(r.excess, g.NumEdges());
  EXPECT_EQ(r.deficit, 0u);
}

TEST(DefectTest, IncomingRequirementWitnessedByAssignment) {
  // Deficit witnesses respect tau, not the GFP: if the required neighbor
  // type has no assigned member at the right end, the fact is invented.
  graph::GraphBuilder b;
  ASSERT_OK(b.Edge("p", "r", "q"));
  util::Status st;
  graph::DataGraph g = std::move(b).Build(&st);
  ASSERT_OK(st);
  graph::LabelId rl = g.labels().Find("r");
  TypingProgram p;
  TypeId a = p.AddType("a", {});
  TypeId bb = p.AddType("b", {});
  p.type(bb).signature = TypeSignature::FromLinks({TypedLink::In(rl, a)});

  TypeAssignment tau(g.NumObjects());
  tau.Assign(1, bb);  // q needs an incoming r from an `a`...
  DefectReport r1 = ComputeDefect(p, g, tau);
  EXPECT_EQ(r1.deficit, 1u);  // ...but p is not assigned to `a`

  tau.Assign(0, a);
  DefectReport r2 = ComputeDefect(p, g, tau);
  EXPECT_EQ(r2.deficit, 0u);
}

TEST(DefectTest, DuplicateInventedFactsCountOnce) {
  // Two objects assigned to the same impossible type requirement, where
  // the canonical witness coincides, produce distinct facts (different
  // endpoints), but one object assigned to two types that both miss the
  // same edge invents it once.
  graph::GraphBuilder b;
  ASSERT_OK(b.Complex("x"));
  ASSERT_OK(b.Atomic("v", "1"));
  util::Status st;
  graph::DataGraph g = std::move(b).Build(&st);
  ASSERT_OK(st);
  graph::LabelId l = g.InternLabel("m");
  TypingProgram p;
  TypeId t1 = p.AddType("t1", TypeSignature::FromLinks(
                                  {TypedLink::OutAtomic(l)}));
  TypeId t2 = p.AddType(
      "t2", TypeSignature::FromLinks({TypedLink::OutAtomic(l)}));
  TypeAssignment tau(g.NumObjects());
  tau.Assign(0, t1);
  tau.Assign(0, t2);
  DefectReport r = ComputeDefect(p, g, tau, true);
  EXPECT_EQ(r.deficit, 1u);  // the same link(x, v, m) serves both
}

TEST(TypeAssignmentTest, BasicOperations) {
  TypeAssignment tau(3);
  EXPECT_EQ(tau.NumObjects(), 3u);
  tau.Assign(0, 2);
  tau.Assign(0, 1);
  tau.Assign(0, 2);  // dup
  EXPECT_EQ(tau.TypesOf(0), (std::vector<TypeId>{1, 2}));
  EXPECT_TRUE(tau.Has(0, 1));
  EXPECT_FALSE(tau.Has(1, 1));
  tau.Unassign(0, 1);
  EXPECT_FALSE(tau.Has(0, 1));
  tau.Assign(2, 1);
  EXPECT_EQ(tau.ObjectsOf(1), (std::vector<graph::ObjectId>{2}));
  EXPECT_EQ(tau.NumTypedObjects(), 2u);
}

}  // namespace
}  // namespace schemex::typing
