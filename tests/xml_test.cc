#include <gtest/gtest.h>

#include "extract/extractor.h"
#include "graph/graph_stats.h"
#include "tests/test_util.h"
#include "xml/import.h"
#include "xml/xml.h"

namespace schemex::xml {
namespace {

TEST(XmlParseTest, ElementsAttributesText) {
  ASSERT_OK_AND_ASSIGN(
      auto root,
      ParseXml(R"(<?xml version="1.0"?>
<person id="p1" dept='cs'>
  <name>Gates</name>
  <firm><name>Microsoft</name></firm>
  trailing words
</person>)"));
  EXPECT_EQ(root->tag, "person");
  ASSERT_EQ(root->attributes.size(), 2u);
  EXPECT_EQ(*root->FindAttribute("id"), "p1");
  EXPECT_EQ(*root->FindAttribute("dept"), "cs");
  EXPECT_EQ(root->FindAttribute("nope"), nullptr);
  ASSERT_EQ(root->children.size(), 2u);
  EXPECT_EQ(root->children[0]->tag, "name");
  EXPECT_EQ(root->children[0]->text, "Gates");
  EXPECT_EQ(root->children[1]->children[0]->text, "Microsoft");
  EXPECT_EQ(root->text, "trailing words");
}

TEST(XmlParseTest, SelfClosingCommentsCdataEntities) {
  ASSERT_OK_AND_ASSIGN(auto root, ParseXml(R"(
<!-- prologue comment -->
<doc>
  <empty flag="yes"/>
  <!-- inner comment -->
  <code><![CDATA[if (a < b) a &= b;]]></code>
  <esc>&lt;tag&gt; &amp; &quot;q&quot; &apos;a&apos; &#65;&#x42;</esc>
</doc>)"));
  ASSERT_EQ(root->children.size(), 3u);
  EXPECT_EQ(root->children[0]->tag, "empty");
  EXPECT_TRUE(root->children[0]->children.empty());
  EXPECT_EQ(root->children[1]->text, "if (a < b) a &= b;");
  EXPECT_EQ(root->children[2]->text, "<tag> & \"q\" 'a' AB");
}

TEST(XmlParseTest, Malformed) {
  EXPECT_FALSE(ParseXml("").ok());
  EXPECT_FALSE(ParseXml("<a><b></a></b>").ok());      // mismatched
  EXPECT_FALSE(ParseXml("<a>").ok());                 // unterminated
  EXPECT_FALSE(ParseXml("<a></a><b></b>").ok());      // two roots
  EXPECT_FALSE(ParseXml("<a x=unquoted></a>").ok());
  EXPECT_FALSE(ParseXml("<a>&bogus;</a>").ok());
  EXPECT_FALSE(ParseXml("just text").ok());
  EXPECT_FALSE(ParseXml("<a x=\"open></a>").ok());
}

TEST(XmlImportTest, LeafCollapsingMatchesPaperModeling) {
  ASSERT_OK_AND_ASSIGN(graph::DataGraph g, ImportXml(R"(
<person>
  <name>Gates</name>
  <firm><name>Microsoft</name></firm>
</person>)"));
  // person (complex) -name-> "Gates" (atomic), -firm-> firm (complex)
  // -name-> "Microsoft".
  EXPECT_EQ(g.NumComplexObjects(), 2u);
  EXPECT_EQ(g.NumAtomicObjects(), 2u);
  EXPECT_EQ(g.NumEdges(), 3u);
  graph::LabelId name = g.labels().Find("name");
  ASSERT_NE(name, graph::kInvalidLabel);
  EXPECT_TRUE(g.HasEdgeToAtomic(0, name));
  ASSERT_OK(g.Validate());
}

TEST(XmlImportTest, AttributesAndMixedText) {
  ASSERT_OK_AND_ASSIGN(graph::DataGraph g, ImportXml(
      R"(<page url="http://x"><b>bold</b> plain tail</page>)"));
  graph::LabelId url = g.labels().Find("url");
  graph::LabelId text = g.labels().Find("text");
  ASSERT_NE(url, graph::kInvalidLabel);
  ASSERT_NE(text, graph::kInvalidLabel);
  EXPECT_TRUE(g.HasEdgeToAtomic(0, url));
  EXPECT_TRUE(g.HasEdgeToAtomic(0, text));
}

TEST(XmlImportTest, NoCollapseOption) {
  XmlImportOptions opt;
  opt.collapse_text_leaves = false;
  ASSERT_OK_AND_ASSIGN(graph::DataGraph g,
                       ImportXml("<r><name>Gates</name></r>", opt));
  // name becomes a complex node with a text edge.
  EXPECT_EQ(g.NumComplexObjects(), 2u);
  EXPECT_EQ(g.NumAtomicObjects(), 1u);
  EXPECT_EQ(g.NumEdges(), 2u);
}

TEST(XmlImportTest, RepeatedChildrenFanOut) {
  ASSERT_OK_AND_ASSIGN(graph::DataGraph g, ImportXml(R"(
<group>
  <member><name>a</name><email>a@x</email></member>
  <member><name>b</name></member>
  <member><name>c</name><email>c@x</email><photo>c.gif</photo></member>
</group>)"));
  graph::GraphStats s = graph::ComputeStats(g);
  EXPECT_EQ(s.num_complex, 4u);  // group + 3 members
  // Irregular members: exactly the paper's home-page scenario. Extract!
  extract::ExtractorOptions opt;
  opt.target_num_types = 2;
  auto r = extract::SchemaExtractor(opt).Run(g);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_final_types, 2u);
  // Perfect typing distinguishes the three member variants + group.
  EXPECT_EQ(r->num_perfect_types, 4u);
}

TEST(XmlImportTest, DeepNesting) {
  std::string deep;
  for (int i = 0; i < 40; ++i) deep += "<n" + std::to_string(i) + ">";
  deep += "x";
  for (int i = 39; i >= 0; --i) deep += "</n" + std::to_string(i) + ">";
  ASSERT_OK_AND_ASSIGN(graph::DataGraph g, ImportXml(deep));
  // 39 complex wrappers; the innermost text leaf collapses to an atomic.
  EXPECT_EQ(g.NumObjects(), 40u);
  EXPECT_EQ(g.NumAtomicObjects(), 1u);
  ASSERT_OK(g.Validate());
}

}  // namespace
}  // namespace schemex::xml
