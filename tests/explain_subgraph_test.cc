#include <gtest/gtest.h>

#include "graph/merge.h"
#include "graph/subgraph.h"
#include "tests/test_util.h"
#include "typing/explain.h"
#include "typing/perfect_typing.h"

namespace schemex {
namespace {

graph::ObjectId Obj(const graph::DataGraph& g, const char* name) {
  for (graph::ObjectId o = 0; o < g.NumObjects(); ++o) {
    if (g.Name(o) == name) return o;
  }
  return graph::kInvalidObject;
}

TEST(ExplainTest, WitnessesPerTypedLink) {
  graph::DataGraph g = test::MakeFigure4Database();
  ASSERT_OK_AND_ASSIGN(typing::PerfectTypingResult stage1,
                       typing::PerfectTypingViaGfp(g));
  ASSERT_OK_AND_ASSIGN(typing::Extents m,
                       typing::PerfectTypingExtents(stage1, g));
  graph::ObjectId o4 = Obj(g, "o4");
  typing::TypeId h4 = stage1.home[o4];
  ASSERT_OK_AND_ASSIGN(
      typing::MembershipExplanation why,
      typing::ExplainMembership(stage1.program, g, m, o4, h4));
  // o4's home = {<-a^h1, ->b^0, ->c^0}: witnesses o1, o6, o7.
  ASSERT_EQ(why.witnesses.size(), 3u);
  EXPECT_EQ(why.witnesses[0].witness, Obj(g, "o1"));
  EXPECT_EQ(g.Name(why.witnesses[1].witness), "o6");
  EXPECT_EQ(g.Name(why.witnesses[2].witness), "o7");

  std::string text = why.ToString(g, stage1.program);
  EXPECT_NE(text.find("o4 :"), std::string::npos);
  EXPECT_NE(text.find("via o1"), std::string::npos);
}

TEST(ExplainTest, NonMemberCannotBeExplained) {
  graph::DataGraph g = test::MakeFigure4Database();
  ASSERT_OK_AND_ASSIGN(typing::PerfectTypingResult stage1,
                       typing::PerfectTypingViaGfp(g));
  ASSERT_OK_AND_ASSIGN(typing::Extents m,
                       typing::PerfectTypingExtents(stage1, g));
  graph::ObjectId o2 = Obj(g, "o2");
  typing::TypeId h4 = stage1.home[Obj(g, "o4")];  // requires ->c^0
  auto why = typing::ExplainMembership(stage1.program, g, m, o2, h4);
  EXPECT_EQ(why.status().code(), util::StatusCode::kFailedPrecondition);
  EXPECT_FALSE(
      typing::ExplainMembership(stage1.program, g, m, o2, 99).ok());
}

TEST(ExplainTest, EmptyBodyExplained) {
  graph::DataGraph g;
  g.AddComplex("solo");
  typing::TypingProgram p;
  p.AddType("anything", {});
  typing::Extents m;
  m.per_type.assign(1, util::DenseBitset(1));
  m.per_type[0].Set(0);
  ASSERT_OK_AND_ASSIGN(typing::MembershipExplanation why,
                       typing::ExplainMembership(p, g, m, 0, 0));
  EXPECT_TRUE(why.witnesses.empty());
  EXPECT_NE(why.ToString(g, p).find("every object qualifies"),
            std::string::npos);
}

TEST(SubgraphTest, KeepsListedObjectsAndInducedEdges) {
  graph::DataGraph g = test::MakeFigure4Database();
  std::vector<graph::ObjectId> keep = {Obj(g, "o1"), Obj(g, "o2")};
  std::vector<graph::ObjectId> remap;
  graph::SubgraphOptions opt;
  graph::DataGraph sub = InducedSubgraph(g, keep, opt, &remap);
  ASSERT_OK(sub.Validate());
  // o1, o2 kept; o2's atomic neighbor o5 pulled in; o3/o4 dropped along
  // with o1's edges to them.
  EXPECT_EQ(sub.NumComplexObjects(), 2u);
  EXPECT_EQ(sub.NumAtomicObjects(), 1u);
  EXPECT_EQ(sub.NumEdges(), 2u);  // o1-a->o2, o2-b->o5
  EXPECT_EQ(remap[Obj(g, "o3")], graph::kInvalidObject);
  EXPECT_NE(remap[Obj(g, "o1")], graph::kInvalidObject);
  // Label table shared: ids identical.
  EXPECT_EQ(sub.labels().Find("a"), g.labels().Find("a"));
}

TEST(SubgraphTest, WithoutAtomicNeighbors) {
  graph::DataGraph g = test::MakeFigure4Database();
  graph::SubgraphOptions opt;
  opt.include_atomic_neighbors = false;
  graph::DataGraph sub =
      InducedSubgraph(g, {Obj(g, "o2"), Obj(g, "o4")}, opt);
  EXPECT_EQ(sub.NumAtomicObjects(), 0u);
  EXPECT_EQ(sub.NumEdges(), 0u);
}

TEST(SubgraphTest, AtomicObjectsCanBeKeptExplicitly) {
  graph::DataGraph g = test::MakeFigure4Database();
  graph::SubgraphOptions opt;
  opt.include_atomic_neighbors = false;
  graph::DataGraph sub =
      InducedSubgraph(g, {Obj(g, "o2"), Obj(g, "o5")}, opt);
  EXPECT_EQ(sub.NumAtomicObjects(), 1u);
  EXPECT_EQ(sub.NumEdges(), 1u);
  EXPECT_EQ(sub.Value(1), "v5");
}

TEST(SubgraphTest, DuplicatesAndOutOfRangeIgnored) {
  graph::DataGraph g = test::MakeFigure4Database();
  graph::ObjectId o1 = Obj(g, "o1");
  graph::DataGraph sub = InducedSubgraph(g, {o1, o1, 9999});
  EXPECT_EQ(sub.NumComplexObjects(), 1u);
}

TEST(SubgraphTest, FullKeepIsIsomorphic) {
  graph::DataGraph g = test::MakeFigure2Database();
  std::vector<graph::ObjectId> all;
  for (graph::ObjectId o = 0; o < g.NumObjects(); ++o) all.push_back(o);
  graph::DataGraph sub = InducedSubgraph(g, all);
  EXPECT_EQ(sub.NumObjects(), g.NumObjects());
  EXPECT_EQ(sub.NumEdges(), g.NumEdges());
  ASSERT_OK(sub.Validate());
}

TEST(MergeTest, DisjointUnionUnifiesLabels) {
  graph::DataGraph a = test::MakeFigure2Database();
  graph::DataGraph b = test::MakeFigure4Database();
  std::vector<graph::ObjectId> remap;
  graph::DataGraph m = graph::MergeGraphs(a, b, &remap);
  ASSERT_OK(m.Validate());
  EXPECT_EQ(m.NumObjects(), a.NumObjects() + b.NumObjects());
  EXPECT_EQ(m.NumEdges(), a.NumEdges() + b.NumEdges());
  // a's ids unchanged; b's ids shifted.
  EXPECT_EQ(m.Name(0), a.Name(0));
  for (graph::ObjectId o = 0; o < b.NumObjects(); ++o) {
    EXPECT_EQ(m.Name(remap[o]), b.Name(o));
    EXPECT_EQ(m.IsAtomic(remap[o]), b.IsAtomic(o));
  }
  // Shared label names unified, distinct ones added.
  EXPECT_LE(m.labels().size(), a.labels().size() + b.labels().size());
  EXPECT_NE(m.labels().Find("name"), graph::kInvalidLabel);
  EXPECT_NE(m.labels().Find("a"), graph::kInvalidLabel);
}

TEST(MergeTest, MergeWithEmpty) {
  graph::DataGraph a = test::MakeFigure2Database();
  graph::DataGraph empty;
  graph::DataGraph m = graph::MergeGraphs(a, empty);
  EXPECT_EQ(m.NumObjects(), a.NumObjects());
  graph::DataGraph m2 = graph::MergeGraphs(empty, a);
  EXPECT_EQ(m2.NumEdges(), a.NumEdges());
}

TEST(MergeTest, ExtractionSeesBothSources) {
  // Two copies of the same regular data: the merged graph still has the
  // same perfect typing (types unify across sources).
  graph::DataGraph a = test::MakeFigure2Database();
  graph::DataGraph m = graph::MergeGraphs(a, a);
  ASSERT_OK_AND_ASSIGN(typing::PerfectTypingResult stage1,
                       typing::PerfectTypingViaGfp(m));
  EXPECT_EQ(stage1.program.NumTypes(), 2u);
  EXPECT_EQ(stage1.weight[0] + stage1.weight[1], 8u);
}

}  // namespace
}  // namespace schemex
