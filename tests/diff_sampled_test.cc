#include <gtest/gtest.h>

#include "extract/sampled.h"
#include "gen/dbg.h"
#include "gen/perturb.h"
#include "gen/spec.h"
#include "tests/test_util.h"
#include "typing/program_diff.h"

namespace schemex {
namespace {

using typing::DiffPrograms;
using typing::ProgramDiff;
using typing::TypedLink;
using typing::TypeSignature;
using typing::TypingProgram;

class DiffTest : public ::testing::Test {
 protected:
  graph::LabelInterner labels_;
  graph::LabelId a_ = labels_.Intern("a");
  graph::LabelId b_ = labels_.Intern("b");
  graph::LabelId c_ = labels_.Intern("c");
};

TEST_F(DiffTest, IdenticalProgramsDiffEmpty) {
  TypingProgram p;
  p.AddType("t", TypeSignature::FromLinks({TypedLink::OutAtomic(a_)}));
  ProgramDiff d = DiffPrograms(p, p);
  EXPECT_TRUE(d.identical());
  ASSERT_EQ(d.matched.size(), 1u);
  EXPECT_EQ(d.matched[0].distance, 0u);
  EXPECT_EQ(d.ToString(p, p, labels_), "= t\n");
}

TEST_F(DiffTest, DriftAndAddRemove) {
  TypingProgram before;
  before.AddType("person", TypeSignature::FromLinks(
                               {TypedLink::OutAtomic(a_),
                                TypedLink::OutAtomic(b_)}));
  before.AddType("gone", TypeSignature::FromLinks(
                             {TypedLink::OutAtomic(c_),
                              TypedLink::OutAtomic(labels_.Intern("x1")),
                              TypedLink::OutAtomic(labels_.Intern("x2")),
                              TypedLink::OutAtomic(labels_.Intern("x3")),
                              TypedLink::OutAtomic(labels_.Intern("x4"))}));
  TypingProgram after;
  after.AddType("person2", TypeSignature::FromLinks(
                               {TypedLink::OutAtomic(a_),
                                TypedLink::OutAtomic(c_)}));

  ProgramDiff d = DiffPrograms(before, after, /*max_match_distance=*/3);
  ASSERT_EQ(d.matched.size(), 1u);
  EXPECT_EQ(d.matched[0].before, 0);
  EXPECT_EQ(d.matched[0].after, 0);
  EXPECT_EQ(d.matched[0].distance, 2u);  // -b, +c
  EXPECT_EQ(d.total_drift, 2u);
  EXPECT_EQ(d.removed, (std::vector<typing::TypeId>{1}));
  EXPECT_TRUE(d.added.empty());
  EXPECT_FALSE(d.identical());

  std::string report = d.ToString(before, after, labels_);
  EXPECT_NE(report.find("~ person -> person2 (2 links changed)"),
            std::string::npos);
  EXPECT_NE(report.find("- ->b^0"), std::string::npos);
  EXPECT_NE(report.find("+ ->c^0"), std::string::npos);
  EXPECT_NE(report.find("- gone"), std::string::npos);
}

TEST_F(DiffTest, GreedyPairsClosestFirst) {
  // before: {a}, {a,b}; after: {a,b,c}, {a}. The zero-distance pair must
  // match first, leaving {a,b} ~ {a,b,c} at distance 1.
  TypingProgram before;
  before.AddType("x", TypeSignature::FromLinks({TypedLink::OutAtomic(a_)}));
  before.AddType("y", TypeSignature::FromLinks(
                          {TypedLink::OutAtomic(a_), TypedLink::OutAtomic(b_)}));
  TypingProgram after;
  after.AddType("y2", TypeSignature::FromLinks(
                          {TypedLink::OutAtomic(a_), TypedLink::OutAtomic(b_),
                           TypedLink::OutAtomic(c_)}));
  after.AddType("x2", TypeSignature::FromLinks({TypedLink::OutAtomic(a_)}));
  ProgramDiff d = DiffPrograms(before, after);
  ASSERT_EQ(d.matched.size(), 2u);
  EXPECT_EQ(d.matched[0].before, 0);
  EXPECT_EQ(d.matched[0].after, 1);
  EXPECT_EQ(d.matched[0].distance, 0u);
  EXPECT_EQ(d.matched[1].distance, 1u);
  EXPECT_EQ(d.total_drift, 1u);
}

TEST_F(DiffTest, EmptyPrograms) {
  TypingProgram empty;
  TypingProgram p;
  p.AddType("t", TypeSignature::FromLinks({TypedLink::OutAtomic(a_)}));
  ProgramDiff d = DiffPrograms(empty, p);
  EXPECT_TRUE(d.matched.empty());
  EXPECT_EQ(d.added.size(), 1u);
  EXPECT_TRUE(DiffPrograms(empty, empty).identical());
}

TEST(DiffIntegrationTest, PerturbationShowsUpAsDrift) {
  auto g1 = gen::MakeDbgDataset(5);
  graph::DataGraph g2 = *g1;
  gen::PerturbOptions popt;
  popt.delete_links = 5;
  popt.add_links = 15;
  popt.seed = 3;
  ASSERT_OK(gen::Perturb(&g2, popt));

  extract::ExtractorOptions opt;
  opt.target_num_types = 6;
  auto r1 = extract::SchemaExtractor(opt).Run(*g1);
  auto r2 = extract::SchemaExtractor(opt).Run(g2);
  ASSERT_TRUE(r1.ok() && r2.ok());
  ProgramDiff d = DiffPrograms(r1->final_program, r2->final_program);
  // Same-source schemas should mostly match up (6 vs 6 types).
  EXPECT_EQ(d.matched.size(), 6u);
  EXPECT_FALSE(d.ToString(r1->final_program, r2->final_program,
                          g2.labels())
                   .empty());
}

TEST(SampledExtractTest, SampleSchemaGeneralizes) {
  // Extract from a 25% sample of a structured database; the recast of
  // the full data should type everything with defect comparable to
  // full extraction.
  gen::DatasetSpec spec = gen::DbgSpec();
  for (auto& t : spec.types) t.count *= 8;
  auto g = gen::Generate(spec, 31);
  ASSERT_TRUE(g.ok());

  extract::SampleOptions sopt;
  sopt.sample_complex_objects = g->NumComplexObjects() / 4;
  sopt.extract.target_num_types = 6;
  ASSERT_OK_AND_ASSIGN(extract::SampledExtractionResult r,
                       extract::ExtractFromSample(*g, sopt));
  EXPECT_EQ(r.program.NumTypes(), 6u);
  EXPECT_LT(r.sample_complex, g->NumComplexObjects() / 3);
  EXPECT_GT(r.sample_perfect_types, 6u);
  // Everything typed; most objects exactly.
  EXPECT_EQ(r.recast.num_untyped, 0u);
  EXPECT_GT(r.recast.num_exact, g->NumComplexObjects() / 2);
  // Defect not catastrophic: well below "all edges excess".
  EXPECT_LT(r.defect.defect(), g->NumEdges() / 2);
}

TEST(SampledExtractTest, SampleLargerThanPopulationClamps) {
  auto g = gen::MakeDbgDataset(4);
  extract::SampleOptions sopt;
  sopt.sample_complex_objects = 1 << 20;
  sopt.extract.target_num_types = 6;
  ASSERT_OK_AND_ASSIGN(extract::SampledExtractionResult r,
                       extract::ExtractFromSample(*g, sopt));
  EXPECT_EQ(r.sample_complex, g->NumComplexObjects());
}

TEST(SampledExtractTest, ZeroSampleRejected) {
  auto g = gen::MakeDbgDataset(4);
  extract::SampleOptions sopt;
  sopt.sample_complex_objects = 0;
  EXPECT_FALSE(extract::ExtractFromSample(*g, sopt).ok());
}

}  // namespace
}  // namespace schemex
