#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "util/bitset.h"
#include "util/random.h"
#include "util/status.h"
#include "util/statusor.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace schemex::util {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, OkCodeNormalizesMessage) {
  Status s(StatusCode::kOk, "ignored");
  EXPECT_TRUE(s.ok());
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode c :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kFailedPrecondition,
        StatusCode::kOutOfRange, StatusCode::kUnimplemented,
        StatusCode::kInternal, StatusCode::kParseError}) {
    EXPECT_FALSE(StatusCodeToString(c).empty());
    EXPECT_NE(StatusCodeToString(c), "Unknown");
  }
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::OutOfRange("negative");
  return Status::OK();
}

Status UsesReturnIfError(int x) {
  SCHEMEX_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(UsesReturnIfError(1).ok());
  EXPECT_EQ(UsesReturnIfError(-1).code(), StatusCode::kOutOfRange);
}

StatusOr<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

StatusOr<int> DoubleIt(int x) {
  SCHEMEX_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(StatusOrTest, HoldsValueOrError) {
  StatusOr<int> v = ParsePositive(3);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 3);
  StatusOr<int> e = ParsePositive(0);
  EXPECT_FALSE(e.ok());
  EXPECT_EQ(e.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(e.value_or(42), 42);
}

TEST(StatusOrTest, AssignOrReturnMacro) {
  EXPECT_EQ(*DoubleIt(5), 10);
  EXPECT_FALSE(DoubleIt(-5).ok());
}

TEST(StatusOrTest, OkStatusBecomesInternalError) {
  StatusOr<int> v = Status::OK();
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kInternal);
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123), c(124);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(RngTest, UniformStaysInBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
    int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    double d = rng.UniformDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, UniformCoversAllResidues) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.Uniform(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRoughlyCalibrated) {
  Rng rng(5);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_GT(hits, 2700);
  EXPECT_LT(hits, 3300);
}

TEST(RngTest, SampleIndicesDistinct) {
  Rng rng(2);
  auto s = rng.SampleIndices(100, 30);
  EXPECT_EQ(s.size(), 30u);
  std::set<size_t> set(s.begin(), s.end());
  EXPECT_EQ(set.size(), 30u);
  for (size_t i : s) EXPECT_LT(i, 100u);
}

TEST(RngTest, SampleIndicesClampsToN) {
  Rng rng(2);
  auto s = rng.SampleIndices(5, 50);
  EXPECT_EQ(s.size(), 5u);
}

TEST(StringUtilTest, Split) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(StringUtilTest, SplitWhitespace) {
  EXPECT_EQ(SplitWhitespace("  a\t b\nc  "),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(SplitWhitespace("   ").empty());
}

TEST(StringUtilTest, JoinAndTrim) {
  EXPECT_EQ(Join({"x", "y"}, ", "), "x, y");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Trim("  hi \n"), "hi");
  EXPECT_EQ(Trim(""), "");
}

TEST(StringUtilTest, ParseNumbers) {
  uint64_t u = 0;
  EXPECT_TRUE(ParseUint64("123", &u));
  EXPECT_EQ(u, 123u);
  EXPECT_FALSE(ParseUint64("12x", &u));
  EXPECT_FALSE(ParseUint64("", &u));
  double d = 0;
  EXPECT_TRUE(ParseDouble("2.5", &d));
  EXPECT_DOUBLE_EQ(d, 2.5);
  EXPECT_FALSE(ParseDouble("2.5z", &d));
}

TEST(StringUtilTest, StringPrintf) {
  EXPECT_EQ(StringPrintf("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StringPrintf("%s", ""), "");
}

TEST(BitsetTest, SetClearTestCount) {
  DenseBitset b(130);
  EXPECT_EQ(b.Count(), 0u);
  EXPECT_TRUE(b.None());
  b.Set(0);
  b.Set(64);
  b.Set(129);
  EXPECT_TRUE(b.Test(0));
  EXPECT_TRUE(b.Test(64));
  EXPECT_TRUE(b.Test(129));
  EXPECT_FALSE(b.Test(1));
  EXPECT_EQ(b.Count(), 3u);
  b.Clear(64);
  EXPECT_FALSE(b.Test(64));
  EXPECT_EQ(b.Count(), 2u);
}

TEST(BitsetTest, SetAllRespectsSize) {
  DenseBitset b(70);
  b.SetAll();
  EXPECT_EQ(b.Count(), 70u);
  DenseBitset full(70, true);
  EXPECT_EQ(full.Count(), 70u);
  EXPECT_EQ(b, full);
}

TEST(BitsetTest, AndOrForEach) {
  DenseBitset a(100), b(100);
  a.Set(1);
  a.Set(50);
  b.Set(50);
  b.Set(99);
  DenseBitset u = a;
  u.OrWith(b);
  EXPECT_EQ(u.Count(), 3u);
  DenseBitset i = a;
  i.AndWith(b);
  EXPECT_EQ(i.Count(), 1u);
  std::vector<size_t> seen;
  u.ForEach([&](size_t x) { seen.push_back(x); });
  EXPECT_EQ(seen, (std::vector<size_t>{1, 50, 99}));
}

TEST(TablePrinterTest, AlignedOutput) {
  TablePrinter t;
  t.SetHeader({"name", "n"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"b", "22"});
  std::ostringstream os;
  t.Print(os);
  std::string s = os.str();
  EXPECT_NE(s.find("| name  | n  |"), std::string::npos);
  EXPECT_NE(s.find("| alpha | 1  |"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TablePrinterTest, CsvEscaping) {
  TablePrinter t;
  t.SetHeader({"a", "b"});
  t.AddRow({"x,y", "q\"z"});
  std::ostringstream os;
  t.PrintCsv(os);
  EXPECT_EQ(os.str(), "a,b\n\"x,y\",\"q\"\"z\"\n");
}

TEST(TablePrinterTest, ShortRowsArePadded) {
  TablePrinter t;
  t.SetHeader({"a", "b", "c"});
  t.AddRow({"only"});
  std::ostringstream os;
  t.Print(os);
  EXPECT_NE(os.str().find("only"), std::string::npos);
}

}  // namespace
}  // namespace schemex::util
