// Cross-module integration flows a downstream user would actually run.

#include <gtest/gtest.h>

#include "catalog/report.h"
#include "catalog/workspace.h"
#include "extract/extractor.h"
#include "extract/knee.h"
#include "gen/dbg.h"
#include "json/import.h"
#include "query/schema_guide.h"
#include "tests/test_util.h"
#include "typing/atomic_sorts.h"
#include "typing/explain.h"
#include "typing/incremental.h"
#include "typing/program_io.h"
#include "xml/import.h"

namespace schemex {
namespace {

TEST(IntegrationTest, XmlToSortedSchema) {
  // XML feed -> atomic sorts -> extraction: the schema shows value sorts.
  ASSERT_OK_AND_ASSIGN(graph::DataGraph raw, xml::ImportXml(R"(
<people>
  <person><name>ada</name><born>1815</born><site>https://a.io</site></person>
  <person><name>alan</name><born>1912</born></person>
  <person><name>grace</name><born>1906</born><site>https://g.io</site></person>
</people>)"));
  graph::DataGraph g = typing::RefineAtomicSorts(raw);
  extract::ExtractorOptions opt;
  opt.target_num_types = 2;
  ASSERT_OK_AND_ASSIGN(extract::ExtractionResult r,
                       extract::SchemaExtractor(opt).Run(g));
  std::string schema = r.final_program.ToString(g.labels());
  EXPECT_NE(schema.find("born@int"), std::string::npos);
  EXPECT_NE(schema.find("name@string"), std::string::npos);
}

TEST(IntegrationTest, RolesPlusClusteringPipeline) {
  // Multiple-roles decomposition feeding clustering: Figure 5 data mixed
  // with extra record types still clusters cleanly.
  graph::DataGraph g = test::MakeFigure5Database();
  // Add a handful of unrelated "team" records so clustering has work.
  for (int i = 0; i < 4; ++i) {
    graph::ObjectId t = g.AddComplex("team" + std::to_string(i));
    (void)g.AddEdge(t, g.AddAtomic("T"), "team_name");
    if (i % 2 == 0) (void)g.AddEdge(t, g.AddAtomic("E"), "league");
  }
  extract::ExtractorOptions opt;
  opt.decompose_roles = true;
  opt.target_num_types = 3;
  opt.stage1 = extract::ExtractorOptions::Stage1Algorithm::kGfp;
  ASSERT_OK_AND_ASSIGN(extract::ExtractionResult r,
                       extract::SchemaExtractor(opt).Run(g));
  EXPECT_TRUE(r.roles_applied);
  EXPECT_EQ(r.roles.num_eliminated, 1u);  // the soccer+movie composite
  EXPECT_EQ(r.num_final_types, 3u);
  // The dual-role object keeps both homes through clustering (they may
  // merge into one final type, but it is never left homeless).
  bool cantona_found = false;
  for (graph::ObjectId o = 0; o < g.NumObjects(); ++o) {
    if (g.Name(o) == "o2") {
      cantona_found = true;
      EXPECT_FALSE(r.final_homes[o].empty());
    }
  }
  EXPECT_TRUE(cantona_found);
}

TEST(IntegrationTest, SaveReloadThenTypeNewArrivals) {
  // Extract -> persist -> reload in a "new process" -> stream arrivals.
  auto g = gen::MakeDbgDataset(8);
  extract::ExtractorOptions opt;
  opt.target_num_types = 6;
  auto r = extract::SchemaExtractor(opt).Run(*g);
  ASSERT_TRUE(r.ok());

  std::string schema_text =
      typing::WriteTypingProgram(r->final_program, g->labels());

  // "New process": regenerate the data, reload the schema.
  auto g2 = gen::MakeDbgDataset(8);
  ASSERT_OK_AND_ASSIGN(typing::TypingProgram loaded,
                       typing::ReadTypingProgram(schema_text,
                                                 &g2->labels()));
  std::vector<std::vector<typing::TypeId>> no_homes(g2->NumObjects());
  ASSERT_OK_AND_ASSIGN(typing::RecastResult recast,
                       typing::Recast(loaded, *g2, no_homes));

  typing::IncrementalTyper typer(loaded, *g2, recast.assignment);
  typing::IncrementalTyper::NewObject rec;
  rec.name = "new_degree";
  rec.fields = {{"major", "CS"}, {"school", "Stanford"},
                {"name", "PhD"}, {"year", "1998"}};
  ASSERT_OK_AND_ASSIGN(typing::IncrementalTyper::TypedObject typed,
                       typer.AddAndType(rec));
  EXPECT_FALSE(typed.exact_types.empty());
  EXPECT_FALSE(typer.RetypeRecommended());
}

TEST(IntegrationTest, KneeDrivenExtractionThenQuery) {
  // Sweep -> knee -> extract at the knee -> schema-guided query.
  auto g = gen::MakeDbgDataset();
  extract::ExtractorOptions opt;
  ASSERT_OK_AND_ASSIGN(std::vector<extract::SensitivityPoint> pts,
                       extract::SensitivitySweep(*g, opt));
  extract::Knee knee = extract::FindKnee(pts);
  ASSERT_GT(knee.k, 1u);
  ASSERT_LE(knee.k, 20u);

  opt.target_num_types = knee.k;
  ASSERT_OK_AND_ASSIGN(extract::ExtractionResult r,
                       extract::SchemaExtractor(opt).Run(*g));
  query::SchemaGuide guide(r.final_program, r.recast.assignment);
  ASSERT_OK_AND_ASSIGN(query::PathQuery q,
                       query::ParsePathQuery("author.name"));
  auto hits = guide.Evaluate(*g, q);
  EXPECT_FALSE(hits.empty());
}

TEST(IntegrationTest, JsonReportEndToEnd) {
  ASSERT_OK_AND_ASSIGN(graph::DataGraph g, json::ImportJson(R"([
    {"sku": "a1", "price": "9.99"},
    {"sku": "a2", "price": "19.99", "sale": "true"},
    {"sku": "a3", "price": "5.00"}
  ])"));
  extract::ExtractorOptions opt;
  opt.target_num_types = 2;
  ASSERT_OK_AND_ASSIGN(extract::ExtractionResult r,
                       extract::SchemaExtractor(opt).Run(g));
  catalog::Workspace ws;
  ws.SetGraph(g);
  ws.program = r.final_program;
  ws.assignment = r.recast.assignment;
  ASSERT_OK(ws.Validate());
  std::string report = catalog::RenderReport(ws);
  EXPECT_NE(report.find("sku"), std::string::npos);
  EXPECT_NE(report.find("defect"), std::string::npos);
}

TEST(IntegrationTest, ExplainWhyAfterExtraction) {
  auto g = gen::MakeDbgDataset();
  extract::ExtractorOptions opt;
  opt.target_num_types = 6;
  ASSERT_OK_AND_ASSIGN(extract::ExtractionResult r,
                       extract::SchemaExtractor(opt).Run(*g));
  // Pick any exactly-typed object and explain one of its GFP memberships.
  bool explained = false;
  for (graph::ObjectId o = 0; o < g->NumObjects() && !explained; ++o) {
    for (size_t t = 0; t < r.final_program.NumTypes(); ++t) {
      if (!r.recast.gfp.Contains(static_cast<typing::TypeId>(t), o)) {
        continue;
      }
      ASSERT_OK_AND_ASSIGN(
          typing::MembershipExplanation why,
          typing::ExplainMembership(r.final_program, *g, r.recast.gfp, o,
                                    static_cast<typing::TypeId>(t)));
      EXPECT_EQ(why.witnesses.size(),
                r.final_program.type(static_cast<typing::TypeId>(t))
                    .signature.size());
      explained = true;
      break;
    }
  }
  EXPECT_TRUE(explained);
}

}  // namespace
}  // namespace schemex
