// End-to-end tests for the schemexd TCP front end: an in-process harness
// boots the listener on an ephemeral loopback port and drives it with
// real sockets — framing edge cases, deadline propagation, disconnects,
// and graceful drain. The heavier concurrent-load scenario lives in
// tcp_stress_test.cc.

#include "service/tcp_server.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "catalog/workspace.h"
#include "extract/extractor.h"
#include "gen/dbg.h"
#include "gen/random_graph.h"
#include "json/json.h"
#include "service/request.h"
#include "service/server.h"
#include "service/tcp_client.h"
#include "tests/test_util.h"
#include "util/string_util.h"

namespace schemex::service {
namespace {

namespace fs = std::filesystem;
using json::Value;

const Value& Field(const Value& obj, const std::string& key) {
  auto it = obj.AsObject().find(key);
  EXPECT_NE(it, obj.AsObject().end()) << "missing field " << key;
  static const Value kNull;
  return it == obj.AsObject().end() ? kNull : it->second;
}

catalog::Workspace MakeDbgWorkspace(uint64_t seed = 3) {
  auto g = gen::MakeDbgDataset(seed);
  EXPECT_TRUE(g.ok());
  extract::ExtractorOptions opt;
  opt.target_num_types = 6;
  auto r = extract::SchemaExtractor(opt).Run(*g);
  EXPECT_TRUE(r.ok());
  catalog::Workspace ws;
  ws.SetGraph(*g);
  ws.program = r->final_program;
  ws.assignment = r->recast.assignment;
  return ws;
}

std::string QueryLine(int64_t id, const std::string& workspace,
                      const std::string& query) {
  return util::StringPrintf(
      "{\"id\":%lld,\"verb\":\"query\",\"params\":{\"workspace\":\"%s\","
      "\"query\":\"%s\"}}",
      static_cast<long long>(id), workspace.c_str(), query.c_str());
}

class TcpServiceTest : public ::testing::Test {
 protected:
  void Boot(TcpServerOptions topt = {}, ServerOptions sopt = {}) {
    server_ = std::make_unique<Server>(sopt);
    tcp_ = std::make_unique<TcpServer>(server_.get(), topt);
    ASSERT_OK(tcp_->Start());
    ASSERT_GT(tcp_->port(), 0);
  }

  TcpClient Connect() {
    auto c = TcpClient::Connect("127.0.0.1", tcp_->port());
    EXPECT_TRUE(c.ok()) << c.status();
    return std::move(c).value();
  }

  std::unique_ptr<Server> server_;
  std::unique_ptr<TcpServer> tcp_;
};

TEST_F(TcpServiceTest, StatsRoundTripWithIdMatch) {
  Boot();
  TcpClient client = Connect();
  ASSERT_OK_AND_ASSIGN(Value resp,
                       client.Call("{\"id\":42,\"verb\":\"stats\"}"));
  EXPECT_TRUE(Field(resp, "ok").AsBool());
  EXPECT_EQ(Field(resp, "id").AsNumber(), 42);
  EXPECT_GT(Field(Field(resp, "result"), "threads").AsNumber(), 0);
}

TEST_F(TcpServiceTest, FullVerbFlowOverTcp) {
  // load_workspace -> extract -> type -> query -> list_workspaces, all
  // through the socket: the TCP path reuses the same dispatcher, cache,
  // and FrozenGraph sharing as the stdio path.
  Boot();
  fs::path dir = fs::temp_directory_path() /
                 ("schemex_tcp_test_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  catalog::Workspace ws = MakeDbgWorkspace();
  ASSERT_OK(catalog::SaveWorkspace(ws, dir.string()));

  TcpClient client = Connect();
  ASSERT_OK_AND_ASSIGN(
      Value load,
      client.Call(util::StringPrintf(
          "{\"id\":1,\"verb\":\"load_workspace\",\"params\":{\"name\":\"dbg\","
          "\"dir\":\"%s\"}}",
          dir.string().c_str())));
  ASSERT_TRUE(Field(load, "ok").AsBool()) << json::Serialize(load);

  ASSERT_OK_AND_ASSIGN(
      Value extract,
      client.Call("{\"id\":2,\"verb\":\"extract\",\"params\":{\"workspace\":"
                  "\"dbg\",\"k\":6}}",
                  /*timeout_s=*/60.0));
  ASSERT_TRUE(Field(extract, "ok").AsBool()) << json::Serialize(extract);
  EXPECT_EQ(Field(Field(extract, "result"), "num_final_types").AsNumber(), 6);

  ASSERT_OK_AND_ASSIGN(
      Value type,
      client.Call("{\"id\":3,\"verb\":\"type\",\"params\":{\"workspace\":"
                  "\"dbg\"}}"));
  ASSERT_TRUE(Field(type, "ok").AsBool());

  ASSERT_OK_AND_ASSIGN(Value query,
                       client.Call(QueryLine(4, "dbg", "project.name")));
  ASSERT_TRUE(Field(query, "ok").AsBool());
  EXPECT_GT(Field(Field(query, "result"), "count").AsNumber(), 0);

  ASSERT_OK_AND_ASSIGN(Value list,
                       client.Call("{\"id\":5,\"verb\":\"list_workspaces\"}"));
  ASSERT_EQ(
      Field(Field(list, "result"), "workspaces").AsArray().size(), 1u);

  fs::remove_all(dir);
}

TEST_F(TcpServiceTest, PipelinedRequestsAllAnsweredIdsMatch) {
  // Fire a burst of requests down one connection before reading anything:
  // every id must come back exactly once (responses may be reordered).
  Boot();
  ASSERT_OK(server_->InstallWorkspace("dbg", MakeDbgWorkspace()));
  TcpClient client = Connect();

  constexpr int kBurst = 64;
  std::set<int64_t> want;
  for (int i = 0; i < kBurst; ++i) {
    ASSERT_OK(client.SendLine(QueryLine(1000 + i, "dbg", "project.name")));
    want.insert(1000 + i);
  }
  std::set<int64_t> got;
  for (int i = 0; i < kBurst; ++i) {
    ASSERT_OK_AND_ASSIGN(std::string line, client.ReadLine());
    ASSERT_OK_AND_ASSIGN(Value v, json::Parse(line));
    EXPECT_TRUE(Field(v, "ok").AsBool()) << line;
    EXPECT_TRUE(got.insert(static_cast<int64_t>(Field(v, "id").AsNumber()))
                    .second)
        << "duplicate id in " << line;
  }
  EXPECT_EQ(got, want);
}

TEST_F(TcpServiceTest, InterleavedConnectionsDoNotCrossTalk) {
  // Two connections pipelining against different workspaces: each must
  // see only its own ids, and every response's workspace echo must match
  // the connection's workspace — proof that per-connection outboxes never
  // mix streams.
  Boot();
  ASSERT_OK(server_->InstallWorkspace("alpha", MakeDbgWorkspace(3)));
  ASSERT_OK(server_->InstallWorkspace("beta", MakeDbgWorkspace(7)));

  TcpClient a = Connect();
  TcpClient b = Connect();
  constexpr int kEach = 40;
  for (int i = 0; i < kEach; ++i) {
    ASSERT_OK(a.SendLine(QueryLine(i, "alpha", "project.name")));
    ASSERT_OK(b.SendLine(QueryLine(10000 + i, "beta", "author.name")));
  }
  auto check = [&](TcpClient& c, int64_t base, const std::string& workspace) {
    std::set<int64_t> got;
    for (int i = 0; i < kEach; ++i) {
      ASSERT_OK_AND_ASSIGN(std::string line, c.ReadLine());
      ASSERT_OK_AND_ASSIGN(Value v, json::Parse(line));
      ASSERT_TRUE(Field(v, "ok").AsBool()) << line;
      int64_t id = static_cast<int64_t>(Field(v, "id").AsNumber());
      EXPECT_GE(id, base);
      EXPECT_LT(id, base + kEach);
      EXPECT_EQ(Field(Field(v, "result"), "workspace").AsString(), workspace)
          << line;
      EXPECT_TRUE(got.insert(id).second);
    }
    EXPECT_EQ(got.size(), static_cast<size_t>(kEach));
  };
  check(a, 0, "alpha");
  check(b, 10000, "beta");
}

TEST_F(TcpServiceTest, MissingTrailingNewlineAtEofStillAnswered) {
  // A request whose final newline never arrives must still execute once
  // the client half-closes — the framing bug class the shared Framer
  // fixes.
  Boot();
  TcpClient client = Connect();
  ASSERT_OK(client.SendRaw("{\"id\":9,\"verb\":\"stats\"}"));  // no '\n'
  client.ShutdownWrite();
  ASSERT_OK_AND_ASSIGN(std::string line, client.ReadLine());
  ASSERT_OK_AND_ASSIGN(Value v, json::Parse(line));
  EXPECT_TRUE(Field(v, "ok").AsBool()) << line;
  EXPECT_EQ(Field(v, "id").AsNumber(), 9);
}

TEST_F(TcpServiceTest, HalfLineDisconnectLeavesServerHealthy) {
  Boot();
  {
    TcpClient client = Connect();
    ASSERT_OK(client.SendRaw("{\"id\":1,\"verb\":\"sta"));  // half a line
    client.Close();  // abrupt disconnect mid-request
  }
  // The half line counts as a (failed) request once EOF frames it; either
  // way the server must keep serving new connections.
  TcpClient next = Connect();
  ASSERT_OK_AND_ASSIGN(Value v, next.Call("{\"id\":2,\"verb\":\"stats\"}"));
  EXPECT_TRUE(Field(v, "ok").AsBool());
}

TEST_F(TcpServiceTest, EmbeddedNulRejectedConnectionSurvives) {
  Boot();
  TcpClient client = Connect();
  std::string evil = "{\"id\":1,\"verb\":\"stats\"}";
  evil.insert(8, 1, '\0');
  evil.push_back('\n');
  ASSERT_OK(client.SendRaw(evil));
  ASSERT_OK_AND_ASSIGN(std::string line, client.ReadLine());
  ASSERT_OK_AND_ASSIGN(Value v, json::Parse(line));
  EXPECT_FALSE(Field(v, "ok").AsBool());
  EXPECT_EQ(Field(Field(v, "error"), "code").AsString(), "InvalidArgument");
  // Same connection still serves clean requests.
  ASSERT_OK_AND_ASSIGN(Value v2, client.Call("{\"id\":2,\"verb\":\"stats\"}"));
  EXPECT_TRUE(Field(v2, "ok").AsBool());
  EXPECT_EQ(Field(v2, "id").AsNumber(), 2);
}

TEST_F(TcpServiceTest, OversizedLineRejectedAndResynced) {
  TcpServerOptions topt;
  topt.max_line_bytes = 1024;
  Boot(topt);
  TcpClient client = Connect();
  std::string big = "{\"id\":1,\"verb\":\"query\",\"params\":{\"q\":\"";
  big += std::string(8192, 'x');
  big += "\"}}\n";
  ASSERT_OK(client.SendRaw(big));
  ASSERT_OK_AND_ASSIGN(std::string line, client.ReadLine());
  ASSERT_OK_AND_ASSIGN(Value v, json::Parse(line));
  EXPECT_FALSE(Field(v, "ok").AsBool());
  EXPECT_EQ(Field(Field(v, "error"), "code").AsString(), "InvalidArgument");
  // Framing resynchronized at the newline: the next request works.
  ASSERT_OK_AND_ASSIGN(Value v2, client.Call("{\"id\":2,\"verb\":\"stats\"}"));
  EXPECT_TRUE(Field(v2, "ok").AsBool());
}

TEST_F(TcpServiceTest, DeadlinePropagatesThroughTheSocket) {
  // A per-request timeout_s far below the extraction cost must come back
  // as a DeadlineExceeded envelope — the TCP path inherits the same
  // queue-deadline + mid-pipeline polling as the stdio path.
  Boot();
  gen::RandomGraphOptions gopt;
  gopt.num_complex = 2000;
  gopt.num_atomic = 2000;
  gopt.num_edges = 9000;
  catalog::Workspace ws;
  ws.SetGraph(gen::RandomGraph(gopt));
  ws.assignment = typing::TypeAssignment(ws.graph->NumObjects());
  ASSERT_OK(server_->InstallWorkspace("rand", std::move(ws)));

  TcpClient client = Connect();
  ASSERT_OK_AND_ASSIGN(
      Value v,
      client.Call("{\"id\":1,\"verb\":\"extract\",\"timeout_s\":0.005,"
                  "\"params\":{\"workspace\":\"rand\",\"k\":5}}",
                  /*timeout_s=*/60.0));
  EXPECT_FALSE(Field(v, "ok").AsBool());
  EXPECT_EQ(Field(Field(v, "error"), "code").AsString(), "DeadlineExceeded")
      << json::Serialize(v);
}

TEST_F(TcpServiceTest, GracefulDrainDeliversInFlightResponses) {
  // Shutdown while requests are in flight: the listener closes, but
  // already-dispatched work finishes and its responses are flushed before
  // the connection is torn down.
  Boot();
  ASSERT_OK(server_->InstallWorkspace("dbg", MakeDbgWorkspace()));
  TcpClient client = Connect();
  constexpr int kInFlight = 8;
  for (int i = 0; i < kInFlight; ++i) {
    ASSERT_OK(client.SendLine(
        util::StringPrintf("{\"id\":%d,\"verb\":\"extract\",\"params\":{"
                           "\"workspace\":\"dbg\",\"k\":6}}",
                           i)));
  }
  // Give the poll loop a beat to read + dispatch, then drain.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  std::thread shutdown([&] { tcp_->Shutdown(); });

  std::set<int64_t> got;
  for (int i = 0; i < kInFlight; ++i) {
    auto line = client.ReadLine(/*timeout_s=*/60.0);
    if (!line.ok()) break;  // connection closed after the flush
    auto v = json::Parse(*line);
    ASSERT_TRUE(v.ok()) << *line;
    EXPECT_TRUE(Field(*v, "ok").AsBool()) << *line;
    got.insert(static_cast<int64_t>(Field(*v, "id").AsNumber()));
  }
  shutdown.join();
  // Every request the server admitted before the drain answered. (All
  // eight were sent in one burst before the sleep, so all were read.)
  EXPECT_EQ(got.size(), static_cast<size_t>(kInFlight));

  // After drain, new connections are refused.
  auto late = TcpClient::Connect("127.0.0.1", tcp_->port(), 1.0);
  if (late.ok()) {
    auto resp = late->Call("{\"id\":1,\"verb\":\"stats\"}", 2.0);
    EXPECT_FALSE(resp.ok());
  }
}

TEST_F(TcpServiceTest, IdleConnectionsAreReaped) {
  TcpServerOptions topt;
  topt.idle_timeout_s = 0.2;
  Boot(topt);
  TcpClient client = Connect();
  // No traffic: the server must close the connection, observed as EOF.
  auto line = client.ReadLine(/*timeout_s=*/10.0);
  EXPECT_FALSE(line.ok());
  EXPECT_EQ(line.status().code(), util::StatusCode::kFailedPrecondition)
      << line.status();

  // An active connection with the same budget stays alive as long as it
  // keeps talking.
  TcpClient busy = Connect();
  for (int i = 0; i < 4; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    ASSERT_OK_AND_ASSIGN(Value v, busy.Call("{\"id\":1,\"verb\":\"stats\"}"));
    EXPECT_TRUE(Field(v, "ok").AsBool());
  }
}

TEST_F(TcpServiceTest, MaxConnectionsRefusesExtras) {
  TcpServerOptions topt;
  topt.max_connections = 1;
  Boot(topt);
  TcpClient first = Connect();
  ASSERT_OK_AND_ASSIGN(Value v, first.Call("{\"id\":1,\"verb\":\"stats\"}"));
  EXPECT_TRUE(Field(v, "ok").AsBool());

  // The extra connection is accepted and immediately closed: its first
  // read sees EOF.
  auto second = TcpClient::Connect("127.0.0.1", tcp_->port());
  ASSERT_TRUE(second.ok()) << second.status();
  auto line = second->ReadLine(/*timeout_s=*/10.0);
  EXPECT_FALSE(line.ok());

  // The first connection is unaffected.
  ASSERT_OK_AND_ASSIGN(Value v2, first.Call("{\"id\":2,\"verb\":\"stats\"}"));
  EXPECT_TRUE(Field(v2, "ok").AsBool());
}

TEST_F(TcpServiceTest, StatsExposesTransportCounters) {
  Boot();
  TcpClient client = Connect();
  ASSERT_OK_AND_ASSIGN(Value warm, client.Call("{\"id\":1,\"verb\":\"stats\"}"));
  ASSERT_TRUE(Field(warm, "ok").AsBool());
  ASSERT_OK_AND_ASSIGN(Value v, client.Call("{\"id\":2,\"verb\":\"stats\"}"));
  const Value& counters = Field(Field(v, "result"), "counters");
  ASSERT_EQ(counters.kind(), Value::Kind::kObject);
  EXPECT_GT(Field(counters, "tcp.bytes_in").AsNumber(), 0);
  EXPECT_GT(Field(counters, "tcp.bytes_out").AsNumber(), 0);
  EXPECT_EQ(Field(counters, "tcp.connections_open").AsNumber(), 1);
  EXPECT_GE(Field(counters, "tcp.connections_accepted").AsNumber(), 1);
}

}  // namespace
}  // namespace schemex::service
