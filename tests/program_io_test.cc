#include <gtest/gtest.h>

#include "extract/extractor.h"
#include "gen/dbg.h"
#include "tests/test_util.h"
#include "typing/gfp.h"
#include "typing/program_io.h"

namespace schemex::typing {
namespace {

TEST(ProgramIoTest, RoundTripSimpleProgram) {
  graph::LabelInterner labels;
  graph::LabelId a = labels.Intern("a");
  graph::LabelId b = labels.Intern("b");
  TypingProgram p;
  TypeId t1 = p.AddType("alpha", {});
  TypeId t2 = p.AddType("beta", {});
  p.type(t1).signature = TypeSignature::FromLinks(
      {TypedLink::OutAtomic(a), TypedLink::Out(b, t2)});
  p.type(t2).signature = TypeSignature::FromLinks({TypedLink::In(b, t1)});

  std::string text = WriteTypingProgram(p, labels);
  ASSERT_OK_AND_ASSIGN(TypingProgram p2, ReadTypingProgram(text, &labels));
  EXPECT_EQ(p2.NumTypes(), 2u);
  EXPECT_EQ(p2.type(0).name, "alpha");
  EXPECT_EQ(p2.type(0).signature, p.type(0).signature);
  EXPECT_EQ(p2.type(1).signature, p.type(1).signature);
}

TEST(ProgramIoTest, ExtractedSchemaSurvivesSaveLoad) {
  // Extract on DBG, serialize, load into a FRESH graph's interner, and
  // check the reloaded program types the regenerated data identically.
  auto g = gen::MakeDbgDataset(9);
  extract::ExtractorOptions opt;
  opt.target_num_types = 6;
  auto r = extract::SchemaExtractor(opt).Run(*g);
  ASSERT_TRUE(r.ok());

  std::string text = WriteTypingProgram(r->final_program, g->labels());

  auto g2 = gen::MakeDbgDataset(9);  // same data, fresh interner
  ASSERT_OK_AND_ASSIGN(TypingProgram loaded,
                       ReadTypingProgram(text, &g2->labels()));
  ASSERT_OK_AND_ASSIGN(Extents original, ComputeGfp(r->final_program, *g));
  ASSERT_OK_AND_ASSIGN(Extents reloaded, ComputeGfp(loaded, *g2));
  ASSERT_EQ(original.per_type.size(), reloaded.per_type.size());
  for (size_t t = 0; t < original.per_type.size(); ++t) {
    EXPECT_EQ(original.per_type[t].Count(), reloaded.per_type[t].Count())
        << "type " << t;
  }
}

TEST(ProgramIoTest, RejectsNonFragmentText) {
  graph::LabelInterner labels;
  // Two rules for one head is legal datalog but not a typing program.
  EXPECT_FALSE(ReadTypingProgram(
                   "t(X) :- atomic(X).\nt(X) :- link(X, Y, a), atomic(Y).",
                   &labels)
                   .ok());
  // Plain parse errors propagate too.
  EXPECT_FALSE(ReadTypingProgram("not a program", &labels).ok());
}

TEST(ProgramIoTest, EmptyProgram) {
  graph::LabelInterner labels;
  TypingProgram p;
  EXPECT_EQ(WriteTypingProgram(p, labels), "");
  ASSERT_OK_AND_ASSIGN(TypingProgram p2, ReadTypingProgram("", &labels));
  EXPECT_EQ(p2.NumTypes(), 0u);
}

}  // namespace
}  // namespace schemex::typing
